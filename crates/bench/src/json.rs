//! Minimal machine-readable results serialization: one JSON document per
//! experiment, written by `repro --json DIR` as `BENCH_<id>.json`.
//!
//! The document carries the full rendered dataset (title, headers, sweep
//! rows, footnotes — everything the text table shows, cell for cell), the
//! engine parameterisation, and the wall-clock time of the run, so the
//! perf trajectory of the workspace can finally be tracked by tooling
//! instead of eyeballs. Hand-rolled writer: the workspace builds offline
//! and vendors no serde.

use crate::engine::TrialRunner;
use crate::table::Table;
use std::fmt::Write as _;

/// Escapes a string for a JSON string literal (control characters, quotes,
/// backslashes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn string_array(items: impl IntoIterator<Item = impl AsRef<str>>) -> String {
    let body: Vec<String> = items
        .into_iter()
        .map(|s| format!("\"{}\"", escape(s.as_ref())))
        .collect();
    format!("[{}]", body.join(", "))
}

/// Serializes one experiment's results: the rendered table plus engine
/// parameters and wall-clock seconds. The output is a single pretty-ish
/// JSON object terminated by a newline.
pub fn experiment_json(
    id: &str,
    table: &Table,
    runner: &TrialRunner,
    smoke: bool,
    wall_clock_seconds: f64,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"experiment\": \"{}\",", escape(id));
    let _ = writeln!(out, "  \"title\": \"{}\",", escape(table.title()));
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(out, "  \"headers\": {},", string_array(table.headers()));
    out.push_str("  \"rows\": [\n");
    for (i, row) in table.rows().iter().enumerate() {
        let comma = if i + 1 < table.rows().len() { "," } else { "" };
        let _ = writeln!(out, "    {}{comma}", string_array(row));
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"notes\": {},", string_array(table.notes()));
    out.push_str("  \"engine\": {\n");
    let _ = writeln!(out, "    \"trials\": {},", runner.trials());
    let _ = writeln!(out, "    \"max_trials\": {},", runner.max_trials());
    let _ = writeln!(out, "    \"jobs\": {},", runner.jobs());
    let _ = writeln!(
        out,
        "    \"target_ci\": {},",
        runner
            .target_ci()
            .map_or("null".to_string(), |f| format!("{f}"))
    );
    let _ = writeln!(out, "    \"trace_capture\": {}", runner.captures_traces());
    out.push_str("  },\n");
    let _ = writeln!(out, "  \"wall_clock_seconds\": {wall_clock_seconds:.6}");
    out.push_str("}\n");
    out
}

/// Serializes a trace summary — written as `TRACE_<id>.json` by
/// `repro <experiment> --record DIR --json OUT` (the live run's summary)
/// and as `REPLAY_<stem>.json` by `repro replay FILE --json OUT` (the
/// summary rebuilt from the file alone). For the same trace the two
/// documents differ only in `role` and `wall_clock_seconds`.
pub fn trace_json(
    role: &str,
    path: &str,
    summary: &amac_store::TraceSummary,
    wall_clock_seconds: f64,
) -> String {
    let h = &summary.header;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"role\": \"{}\",", escape(role));
    let _ = writeln!(out, "  \"file\": \"{}\",", escape(path));
    out.push_str("  \"header\": {\n");
    let _ = writeln!(out, "    \"version\": {},", h.version);
    let _ = writeln!(out, "    \"variant\": \"{}\",", h.variant);
    let _ = writeln!(out, "    \"seed\": {},", h.seed);
    let _ = writeln!(out, "    \"f_prog\": {},", h.f_prog);
    let _ = writeln!(out, "    \"f_ack\": {},", h.f_ack);
    let _ = writeln!(out, "    \"nodes\": {},", h.nodes);
    let _ = writeln!(
        out,
        "    \"topology_digest\": \"0x{:016x}\",",
        h.topology_digest
    );
    let _ = writeln!(
        out,
        "    \"fault_plan_digest\": \"0x{:016x}\"",
        h.fault_plan_digest
    );
    out.push_str("  },\n");
    let _ = writeln!(out, "  \"events\": {},", summary.events);
    let _ = writeln!(out, "  \"faults\": {},", summary.faults);
    let _ = writeln!(out, "  \"quiescent\": {},", summary.quiescent);
    out.push_str("  \"stats\": {\n");
    let _ = writeln!(out, "    \"peak_live\": {},", summary.stats.peak_live);
    let _ = writeln!(out, "    \"peak_tracked\": {},", summary.stats.peak_tracked);
    let _ = writeln!(out, "    \"events\": {}", summary.stats.events);
    out.push_str("  },\n");
    out.push_str("  \"validation\": {\n");
    let _ = writeln!(out, "    \"ok\": {},", summary.validation.is_ok());
    let _ = writeln!(
        out,
        "    \"violations\": {}",
        string_array(
            summary
                .validation
                .violations()
                .iter()
                .map(std::string::ToString::to_string)
        )
    );
    out.push_str("  },\n");
    let _ = writeln!(out, "  \"wall_clock_seconds\": {wall_clock_seconds:.6}");
    out.push_str("}\n");
    out
}

/// Serializes one `repro check` exploration — written as
/// `CHECK_<scenario>.json` by `repro check ... --json DIR`. Carries the
/// full statistics block, the exhaustion flag, and the minimized
/// counterexample (or `null` for a clean space).
pub fn check_json(
    report: &amac_check::CheckReport,
    opts: &crate::check::CheckOptions,
    wall_clock_seconds: f64,
) -> String {
    let s = &report.stats;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"scenario\": \"{}\",", escape(&report.scenario));
    let _ = writeln!(out, "  \"nodes\": {},", opts.nodes);
    let _ = writeln!(out, "  \"broken\": {},", opts.broken);
    let _ = writeln!(
        out,
        "  \"depth\": {},",
        opts.depth.map_or("null".to_string(), |d| d.to_string())
    );
    let _ = writeln!(out, "  \"max_schedules\": {},", opts.max_schedules);
    out.push_str("  \"stats\": {\n");
    let _ = writeln!(out, "    \"schedules\": {},", s.schedules);
    let _ = writeln!(out, "    \"distinct\": {},", s.distinct);
    let _ = writeln!(out, "    \"duplicates\": {},", s.duplicates);
    let _ = writeln!(out, "    \"events\": {},", s.events);
    let _ = writeln!(out, "    \"max_schedule_len\": {},", s.max_schedule_len);
    let _ = writeln!(out, "    \"depth_pinned\": {},", s.depth_pinned);
    let _ = writeln!(out, "    \"violations\": {}", s.violations);
    out.push_str("  },\n");
    let _ = writeln!(out, "  \"exhausted\": {},", report.exhausted);
    let _ = writeln!(out, "  \"clean\": {},", report.is_clean());
    match &report.counterexample {
        None => out.push_str("  \"counterexample\": null,\n"),
        Some(cx) => {
            out.push_str("  \"counterexample\": {\n");
            let _ = writeln!(out, "    \"property\": \"{}\",", escape(cx.property));
            let _ = writeln!(out, "    \"detail\": \"{}\",", escape(&cx.detail));
            let schedule: Vec<String> = cx.schedule.iter().map(u64::to_string).collect();
            let _ = writeln!(out, "    \"schedule\": [{}],", schedule.join(", "));
            let _ = writeln!(out, "    \"original_len\": {},", cx.original_len);
            let _ = writeln!(out, "    \"shrink_runs\": {},", cx.shrink_runs);
            let _ = writeln!(
                out,
                "    \"fixture\": {}",
                cx.fixture.as_ref().map_or("null".to_string(), |p| format!(
                    "\"{}\"",
                    escape(&p.display().to_string())
                ))
            );
            out.push_str("  },\n");
        }
    }
    let _ = writeln!(out, "  \"wall_clock_seconds\": {wall_clock_seconds:.6}");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_document_shape_is_valid_enough() {
        let opts = crate::check::CheckOptions {
            broken: true,
            max_schedules: 100_000,
            ..crate::check::CheckOptions::default()
        };
        let report = crate::check::run("consensus", &opts, None).unwrap();
        let doc = check_json(&report, &opts, 0.75);
        assert!(doc.starts_with("{\n") && doc.ends_with("}\n"));
        assert!(doc.contains("\"scenario\": \"consensus\","));
        assert!(doc.contains("\"broken\": true,"));
        assert!(doc.contains("\"depth\": null,"));
        assert!(doc.contains("\"clean\": false,"));
        assert!(doc.contains("\"property\": \"consensus\","));
        assert!(doc.contains("\"fixture\": null"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count(), "{doc}");
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn document_shape_is_valid_enough() {
        let mut t = Table::new("demo \"quoted\"", &["x", "y"]);
        t.row(["1", "2"]);
        t.row(["3", "4"]);
        t.note("a note");
        let runner = TrialRunner::new(3, 2)
            .with_max_trials(12)
            .with_target_ci(0.1);
        let doc = experiment_json("demo", &t, &runner, true, 0.25);
        assert!(doc.starts_with("{\n"));
        assert!(doc.ends_with("}\n"));
        assert!(doc.contains("\"experiment\": \"demo\""));
        assert!(doc.contains("\"title\": \"demo \\\"quoted\\\"\""));
        assert!(doc.contains("[\"1\", \"2\"],"));
        assert!(doc.contains("[\"3\", \"4\"]\n"));
        assert!(doc.contains("\"target_ci\": 0.1"));
        assert!(doc.contains("\"wall_clock_seconds\": 0.250000"));
        // Balanced braces/brackets (cheap well-formedness proxy).
        assert_eq!(doc.matches('{').count(), doc.matches('}').count(), "{doc}");
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn fixed_mode_serializes_null_target() {
        let t = Table::new("t", &["a"]);
        let doc = experiment_json("x", &t, &TrialRunner::single(), false, 1.0);
        assert!(doc.contains("\"target_ci\": null"));
        assert!(doc.contains("\"mode\": \"full\""));
        assert!(doc.contains("\"rows\": [\n  ],"));
    }

    #[test]
    fn trace_document_shape_is_valid_enough() {
        let dir = std::env::temp_dir().join("amac-bench-json-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let opts = crate::record::CanonicalOpts::recording(&dir, true, 0, 0);
        let recorded = crate::record::consensus_crash(&opts)
            .trace
            .expect("recording was requested");
        let doc = trace_json("recorded", "traces/x.amactrace", &recorded.summary, 0.5);
        assert!(doc.starts_with("{\n"));
        assert!(doc.ends_with("}\n"));
        assert!(doc.contains("\"role\": \"recorded\","));
        assert!(doc.contains("\"file\": \"traces/x.amactrace\","));
        assert!(doc.contains("\"version\": 1,"));
        assert!(doc.contains("\"variant\": \"enhanced\","));
        // Digests render as fixed-width hex strings, not JSON numbers
        // (u64 values overflow a double's integer range).
        let h = &recorded.summary.header;
        assert!(doc.contains(&format!(
            "\"topology_digest\": \"0x{:016x}\",",
            h.topology_digest
        )));
        assert!(doc.contains("\"ok\": true,"));
        assert!(doc.contains("\"violations\": []"));
        assert!(doc.contains("\"wall_clock_seconds\": 0.500000"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count(), "{doc}");
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
        std::fs::remove_file(&recorded.path).ok();
    }
}
