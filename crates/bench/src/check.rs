//! CLI-facing wrapper around the [`amac_check`] explorer: maps `repro
//! check` arguments onto scenarios, renders reports, and defines the CI
//! smoke suite.
//!
//! The sizing built into [`smoke_suite`] comes from measured schedule
//! spaces (see `docs/CHECKING.md`): at check scale (`F_prog` = 1,
//! `F_ack` = 2) the crash-free 3-node consensus space is 2 197
//! schedules and the 2-node election space 2 020, both fully
//! enumerable in well under a second; the 3-node election space
//! exceeds 6 × 10⁶ schedules, so the smoke covers it bounded-exhaustively
//! (every schedule over the first [`SMOKE_ELECTION_DEPTH`] decisions,
//! later decisions pinned to their defaults).

use amac_check::{
    explore, Bounds, CheckReport, ConsensusScenario, ElectionScenario, FloodScenario, Scenario,
    PROP_CONSENSUS,
};
use std::fmt::Write as _;
use std::path::Path;

/// Scenario ids `repro check` accepts, in display order.
pub const SCENARIOS: &[&str] = &["consensus", "election", "flood"];

/// Free decision positions the smoke grants the 3-node election space.
pub const SMOKE_ELECTION_DEPTH: usize = 10;

/// Parsed `repro check` parameterisation.
#[derive(Clone, Debug)]
pub struct CheckOptions {
    /// Node count (`--nodes`, default 3).
    pub nodes: usize,
    /// Crash slots for the certified consensus scenario (`--crashes`,
    /// default 0 — the fully-exhaustible space).
    pub crashes: usize,
    /// Message count for the flood scenario (`--messages`, default 1).
    pub messages: usize,
    /// Free decision depth; `None` is `--depth full`.
    pub depth: Option<usize>,
    /// Schedule cap (`--max-schedules`).
    pub max_schedules: u64,
    /// Substitute the deliberately under-provisioned consensus
    /// (`--broken`): the run is then *expected* to find a violation.
    pub broken: bool,
}

impl Default for CheckOptions {
    fn default() -> CheckOptions {
        CheckOptions {
            nodes: 3,
            crashes: 0,
            messages: 1,
            depth: None,
            max_schedules: Bounds::default().max_schedules,
            broken: false,
        }
    }
}

impl CheckOptions {
    /// The exploration bounds these options select.
    pub fn bounds(&self) -> Bounds {
        Bounds {
            max_depth: self.depth,
            max_schedules: self.max_schedules,
            ..Bounds::default()
        }
    }
}

/// Builds the scenario named `id` under `opts`; `None` for an unknown id
/// or an unsupported combination (`--broken` applies to consensus only).
pub fn scenario_for(id: &str, opts: &CheckOptions) -> Option<Box<dyn Scenario>> {
    match (id, opts.broken) {
        ("consensus", true) => Some(Box::new(ConsensusScenario::broken(opts.nodes))),
        ("consensus", false) => Some(Box::new(ConsensusScenario::certified(
            opts.nodes,
            opts.crashes,
        ))),
        ("election", false) => Some(Box::new(ElectionScenario::certified(opts.nodes))),
        ("flood", false) => Some(Box::new(FloodScenario::certified(
            opts.nodes,
            opts.messages,
        ))),
        _ => None,
    }
}

/// Explores the scenario named `id` under `opts`, optionally recording a
/// minimized counterexample fixture at `fixture`.
///
/// Returns `None` exactly when [`scenario_for`] does.
pub fn run(id: &str, opts: &CheckOptions, fixture: Option<&Path>) -> Option<CheckReport> {
    let scenario = scenario_for(id, opts)?;
    Some(explore(scenario.as_ref(), &opts.bounds(), fixture))
}

/// Renders one report as the `repro check` text block.
pub fn render(report: &CheckReport, opts: &CheckOptions) -> String {
    let s = &report.stats;
    let mut out = String::new();
    let depth = opts.depth.map_or("full".to_string(), |d| d.to_string());
    let _ = writeln!(
        out,
        "check {}: nodes={} depth={} max-schedules={}{}",
        report.scenario,
        opts.nodes,
        depth,
        opts.max_schedules,
        if opts.broken { " (broken variant)" } else { "" }
    );
    let _ = writeln!(
        out,
        "  schedules={} distinct={} duplicates={} events={} max-len={} depth-pinned={}",
        s.schedules, s.distinct, s.duplicates, s.events, s.max_schedule_len, s.depth_pinned
    );
    let _ = writeln!(
        out,
        "  exhausted: {}",
        if report.exhausted {
            "yes"
        } else if report.counterexample.is_some() {
            "no (stopped at first violation)"
        } else {
            "no (schedule cap hit)"
        }
    );
    match &report.counterexample {
        None => {
            let _ = writeln!(out, "  verdict: clean");
        }
        Some(cx) => {
            let _ = writeln!(out, "  verdict: VIOLATION ({})", cx.property);
            let _ = writeln!(out, "    detail:   {}", cx.detail);
            let _ = writeln!(
                out,
                "    schedule: {:?} (shrunk from {} draws in {} runs)",
                cx.schedule, cx.original_len, cx.shrink_runs
            );
            if let Some(path) = &cx.fixture {
                let _ = writeln!(out, "    fixture:  {}", path.display());
            }
        }
    }
    out
}

/// One smoke-suite entry: a report plus whether it met its expectation.
#[derive(Debug)]
pub struct SmokeCase {
    /// Human-readable case description.
    pub label: String,
    /// Options the case ran under (for rendering).
    pub opts: CheckOptions,
    /// The exploration outcome.
    pub report: CheckReport,
    /// `true` when the outcome matched the case's expectation.
    pub ok: bool,
}

fn smoke_case(
    label: &str,
    id: &str,
    opts: CheckOptions,
    judge: impl FnOnce(&CheckReport) -> bool,
) -> SmokeCase {
    let report = run(id, &opts, None).expect("smoke suite uses known ids");
    let ok = judge(&report);
    SmokeCase {
        label: label.to_string(),
        opts,
        report,
        ok,
    }
}

/// The blocking CI suite behind `repro check --smoke`: exhaustive
/// certification of every shipped protocol at n = 3 scale (election
/// additionally fully at n = 2 and bounded-exhaustively at n = 3), plus a
/// self-test that the counterexample pipeline still finds and shrinks the
/// known agreement violation of the broken consensus.
pub fn smoke_suite() -> Vec<SmokeCase> {
    let certified = |report: &CheckReport| report.exhausted && report.is_clean();
    vec![
        smoke_case(
            "consensus n=3, crash-free, full depth",
            "consensus",
            CheckOptions::default(),
            certified,
        ),
        smoke_case(
            "election n=2, full depth",
            "election",
            CheckOptions {
                nodes: 2,
                ..CheckOptions::default()
            },
            certified,
        ),
        smoke_case(
            &format!("election n=3, depth {SMOKE_ELECTION_DEPTH}"),
            "election",
            CheckOptions {
                depth: Some(SMOKE_ELECTION_DEPTH),
                ..CheckOptions::default()
            },
            certified,
        ),
        smoke_case(
            "flood n=4, 1 message, full depth",
            "flood",
            CheckOptions {
                nodes: 4,
                ..CheckOptions::default()
            },
            certified,
        ),
        smoke_case(
            "broken consensus n=3 finds + shrinks the violation",
            "consensus",
            CheckOptions {
                broken: true,
                ..CheckOptions::default()
            },
            |report| {
                report
                    .counterexample
                    .as_ref()
                    .is_some_and(|cx| cx.property == PROP_CONSENSUS && cx.schedule.len() <= 6)
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_table_covers_ids_and_rejects_misuse() {
        let opts = CheckOptions::default();
        for id in SCENARIOS {
            assert!(scenario_for(id, &opts).is_some(), "{id}");
        }
        assert!(scenario_for("nope", &opts).is_none());
        let broken = CheckOptions {
            broken: true,
            ..opts
        };
        assert!(scenario_for("consensus", &broken).is_some());
        assert!(scenario_for("election", &broken).is_none());
        assert!(scenario_for("flood", &broken).is_none());
    }

    #[test]
    fn render_shows_verdict_lines() {
        let opts = CheckOptions {
            max_schedules: 50,
            ..CheckOptions::default()
        };
        let report = run("flood", &opts, None).unwrap();
        let text = render(&report, &opts);
        assert!(text.contains("check flood: nodes=3 depth=full max-schedules=50"));
        assert!(text.contains("exhausted: no (schedule cap hit)"));
        assert!(text.contains("verdict: clean"));
    }
}
