//! Least-squares fits for scaling-law analysis.
//!
//! Experiments fit measured completion times against the paper's bound
//! formulas. Two fit shapes cover everything needed: a general linear fit
//! `y = a·x + b` (for per-parameter slopes) and a proportional fit
//! `y = c·x` through the origin (for measured-vs-bound constants).

/// A linear least-squares fit `y ≈ slope·x + intercept`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination (1 = perfect fit).
    pub r2: f64,
}

/// Fits `y = slope·x + intercept` to the points.
///
/// # Panics
///
/// Panics on fewer than 2 points or zero variance in `x`.
///
/// # Examples
///
/// ```
/// use amac_bench::fit::linear_fit;
///
/// let f = linear_fit(&[(1.0, 3.0), (2.0, 5.0), (3.0, 7.0)]);
/// assert!((f.slope - 2.0).abs() < 1e-9);
/// assert!((f.intercept - 1.0).abs() < 1e-9);
/// assert!(f.r2 > 0.999);
/// ```
pub fn linear_fit(points: &[(f64, f64)]) -> LinearFit {
    assert!(points.len() >= 2, "need at least two points");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-12, "x values must not be constant");
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    // Zero variance in y (flat sweeps — easy to hit with small smoke
    // parameterisations or aggregated means) must not yield r2 = NaN from
    // 0/0: a flat line fit perfectly is a perfect fit (1.0); a flat target
    // the fit somehow misses is a total miss (0.0).
    let r2 = if ss_tot > 1e-12 {
        1.0 - ss_res / ss_tot
    } else if ss_res <= 1e-12 {
        1.0
    } else {
        0.0
    };
    LinearFit {
        slope,
        intercept,
        r2,
    }
}

/// A proportional least-squares fit `y ≈ ratio·x` (through the origin).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProportionalFit {
    /// Fitted constant `c` in `y = c·x`.
    pub ratio: f64,
    /// Worst-case observed `y/x` (upper envelope).
    pub max_ratio: f64,
    /// Best-case observed `y/x` (lower envelope).
    pub min_ratio: f64,
}

/// Fits `y = c·x` and reports the ratio envelope. This is the
/// "measured / bound" constant experiments report: an upper bound holds
/// empirically when `max_ratio` is a small constant; a lower bound holds
/// when `min_ratio` stays above a positive constant.
///
/// # Panics
///
/// Panics if `points` is empty or any `x ≤ 0`.
pub fn proportional_fit(points: &[(f64, f64)]) -> ProportionalFit {
    assert!(!points.is_empty(), "need at least one point");
    let mut num = 0.0;
    let mut den = 0.0;
    let mut max_ratio = f64::NEG_INFINITY;
    let mut min_ratio = f64::INFINITY;
    for &(x, y) in points {
        assert!(x > 0.0, "bound values must be positive");
        num += x * y;
        den += x * x;
        max_ratio = max_ratio.max(y / x);
        min_ratio = min_ratio.min(y / x);
    }
    ProportionalFit {
        ratio: num / den,
        max_ratio,
        min_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let pts: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, 4.0 * i as f64 - 2.0)).collect();
        let f = linear_fit(&pts);
        assert!((f.slope - 4.0).abs() < 1e-9);
        assert!((f.intercept + 2.0).abs() < 1e-9);
        assert!(f.r2 > 0.999999);
    }

    #[test]
    fn noisy_fit_has_lower_r2() {
        let pts = vec![(1.0, 2.0), (2.0, 7.0), (3.0, 4.0), (4.0, 11.0)];
        let f = linear_fit(&pts);
        assert!(f.r2 < 1.0);
        assert!(f.slope > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn linear_fit_needs_points() {
        linear_fit(&[(1.0, 1.0)]);
    }

    #[test]
    fn flat_sweep_has_finite_r2() {
        // y constant: ss_tot = 0; the least-squares line reproduces it
        // exactly, so r2 must be 1.0, never NaN.
        let f = linear_fit(&[(1.0, 5.0), (2.0, 5.0), (3.0, 5.0)]);
        assert_eq!(f.r2, 1.0);
        assert!((f.slope).abs() < 1e-12);
        assert!((f.intercept - 5.0).abs() < 1e-12);
        assert!(f.r2.is_finite());
    }

    #[test]
    fn near_flat_sweep_r2_is_finite_and_clamped() {
        // Values within the 1e-12 tolerance of flat: still well-defined.
        let f = linear_fit(&[(1.0, 5.0), (2.0, 5.0 + 1e-13), (3.0, 5.0)]);
        assert!(f.r2.is_finite());
        assert!((0.0..=1.0).contains(&f.r2));
    }

    #[test]
    fn proportional_fit_flat_y_is_finite() {
        let f = proportional_fit(&[(10.0, 5.0), (20.0, 5.0)]);
        assert!(f.ratio.is_finite());
        assert!(f.max_ratio.is_finite() && f.min_ratio.is_finite());
        assert!((f.max_ratio - 0.5).abs() < 1e-12);
        assert!((f.min_ratio - 0.25).abs() < 1e-12);
    }

    #[test]
    fn proportional_envelope() {
        let f = proportional_fit(&[(10.0, 20.0), (20.0, 30.0), (30.0, 60.0)]);
        assert!((f.max_ratio - 2.0).abs() < 1e-9);
        assert!((f.min_ratio - 1.5).abs() < 1e-9);
        assert!(f.ratio > 1.4 && f.ratio < 2.1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn proportional_rejects_nonpositive_x() {
        proportional_fit(&[(0.0, 1.0)]);
    }
}
