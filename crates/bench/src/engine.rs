//! The multi-trial, multi-core experiment engine.
//!
//! Every headline claim of the paper is probabilistic (the Theorem 3.1/4.1
//! completion bounds hold *with high probability*), so a single measurement
//! per sweep point says little. [`TrialRunner`] runs `N` independent trials
//! per experiment and folds the per-trial measurements into streaming
//! aggregates ([`amac_sim::stats::Aggregate`]: Welford mean/variance plus a
//! reservoir for median/p95), fanned out over a scoped `std::thread` worker
//! pool.
//!
//! ## Determinism contract
//!
//! Results are **bit-identical regardless of the worker count**:
//!
//! * trial `i` draws all of its randomness from `SimRng::seed(base).split(i)`
//!   — a pure function of the experiment seed and the trial index, never of
//!   scheduling;
//! * workers only *compute* trials; the fold into aggregates happens
//!   afterwards, in trial-index order.
//!
//! So `--jobs 1` and `--jobs 64` print byte-identical tables, and a table
//! can be reproduced on any machine from `(seed, trials)` alone.
//!
//! ```
//! use amac_bench::engine::TrialRunner;
//!
//! let runner = TrialRunner::new(8, 4);
//! let agg = runner.run_point(42, |ctx| {
//!     // ... simulate something with ctx.rng ...
//!     let mut rng = ctx.rng.clone();
//!     100.0 + rng.below(10) as f64
//! });
//! assert_eq!(agg.count(), 8);
//! assert_eq!(agg, TrialRunner::new(8, 1).run_point(42, |ctx| {
//!     let mut rng = ctx.rng.clone();
//!     100.0 + rng.below(10) as f64
//! }));
//! ```

use amac_sim::stats::Aggregate;
use amac_sim::SimRng;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Per-trial context handed to the measurement closure.
#[derive(Clone, Debug)]
pub struct TrialCtx {
    /// The trial index in `0..trials`.
    pub index: u64,
    /// This trial's private random stream, `SimRng::seed(base).split(index)`.
    /// Clone it before drawing if the closure needs `&mut` access.
    pub rng: SimRng,
}

impl TrialCtx {
    /// A per-trial `u64` seed derived from an experiment's historical base
    /// seed. Trial 0 returns `base` **unchanged**, so a single-trial run
    /// reproduces the pre-engine tables exactly; later trials mix `base`
    /// with this trial's split stream.
    pub fn seed(&self, base: u64) -> u64 {
        if self.index == 0 {
            base
        } else {
            self.rng.clone().next() ^ base
        }
    }
}

/// Fans `N` independent trials out over a worker pool and aggregates the
/// results deterministically. See the [module docs](self) for the
/// determinism contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrialRunner {
    trials: usize,
    jobs: usize,
}

impl TrialRunner {
    /// Creates a runner for `trials` trials over `jobs` worker threads
    /// (both clamped to at least 1).
    pub fn new(trials: usize, jobs: usize) -> TrialRunner {
        TrialRunner {
            trials: trials.max(1),
            jobs: jobs.max(1),
        }
    }

    /// One trial, inline — the historical single-measurement behaviour.
    pub fn single() -> TrialRunner {
        TrialRunner::new(1, 1)
    }

    /// `trials` trials over one worker per available core.
    pub fn with_default_jobs(trials: usize) -> TrialRunner {
        TrialRunner::new(trials, default_jobs())
    }

    /// This runner clamped to a single trial, for fully deterministic
    /// workloads where extra trials would re-measure byte-identical
    /// values: the sweep runs once instead of `trials` times.
    pub fn deterministic(&self) -> TrialRunner {
        TrialRunner {
            trials: 1,
            jobs: self.jobs,
        }
    }

    /// Number of trials per run.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Worker thread count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `measure` once per trial and folds each position of the
    /// returned vector into its own [`Aggregate`] (all trials must return
    /// vectors of the same length). This is the batched entry point: an
    /// experiment measures its whole sweep in one trial closure so that
    /// expensive shared setup (topology sampling) happens once per trial
    /// and every sweep point of one trial shares that topology.
    ///
    /// # Panics
    ///
    /// Panics if trials disagree on the vector length, or if a worker
    /// thread panics.
    pub fn run_matrix<F>(&self, base_seed: u64, measure: F) -> Vec<Aggregate>
    where
        F: Fn(&TrialCtx) -> Vec<f64> + Sync,
    {
        let base = SimRng::seed(base_seed);
        let ctx_for = |i: usize| TrialCtx {
            index: i as u64,
            rng: base.split(i as u64),
        };

        let per_trial: Vec<Vec<f64>> = if self.jobs == 1 || self.trials == 1 {
            (0..self.trials).map(|i| measure(&ctx_for(i))).collect()
        } else {
            let mut slots: Vec<Option<Vec<f64>>> = vec![None; self.trials];
            let next = AtomicUsize::new(0);
            let workers = self.jobs.min(self.trials);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut done: Vec<(usize, Vec<f64>)> = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= self.trials {
                                    break;
                                }
                                done.push((i, measure(&ctx_for(i))));
                            }
                            done
                        })
                    })
                    .collect();
                for handle in handles {
                    for (i, row) in handle.join().expect("trial worker panicked") {
                        slots[i] = Some(row);
                    }
                }
            });
            slots
                .into_iter()
                .map(|s| s.expect("every trial index was claimed by a worker"))
                .collect()
        };

        let width = per_trial.first().map_or(0, Vec::len);
        let mut aggregates = vec![Aggregate::new(); width];
        // Fold in trial-index order: this is what makes the aggregates
        // independent of worker scheduling.
        for (i, row) in per_trial.iter().enumerate() {
            assert_eq!(
                row.len(),
                width,
                "trial {i} measured {} values, trial 0 measured {width}",
                row.len()
            );
            for (aggregate, &x) in aggregates.iter_mut().zip(row) {
                aggregate.record(x);
            }
        }
        aggregates
    }

    /// Runs `measure` once per trial for a single scalar measurement.
    pub fn run_point<F>(&self, base_seed: u64, measure: F) -> Aggregate
    where
        F: Fn(&TrialCtx) -> f64 + Sync,
    {
        self.run_matrix(base_seed, |ctx| vec![measure(ctx)])
            .pop()
            .expect("run_matrix returned one aggregate per position")
    }
}

impl Default for TrialRunner {
    fn default() -> Self {
        TrialRunner::single()
    }
}

/// One worker per available core (1 if the platform will not say).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// A compact, `Copy` snapshot of an [`Aggregate`], carried by
/// [`crate::SweepPoint`] so sweep data stays cheap to pass around.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrialStats {
    /// Number of trials aggregated.
    pub trials: u64,
    /// Mean over trials.
    pub mean: f64,
    /// Half-width of the Student-t 95% confidence interval for the mean
    /// (0 for a single trial).
    pub ci95: f64,
    /// Smallest trial value.
    pub min: f64,
    /// Median trial value.
    pub median: f64,
    /// 95th-percentile trial value.
    pub p95: f64,
    /// Largest trial value.
    pub max: f64,
}

impl TrialStats {
    /// Snapshot of a finished aggregate.
    ///
    /// # Panics
    ///
    /// Panics on an empty aggregate.
    pub fn from_aggregate(aggregate: &Aggregate) -> TrialStats {
        assert!(aggregate.count() > 0, "aggregate holds no trials");
        TrialStats {
            trials: aggregate.count(),
            mean: aggregate.mean(),
            ci95: aggregate.ci95_half_width(),
            min: aggregate.min().unwrap_or(0.0),
            median: aggregate.median().unwrap_or(0.0),
            p95: aggregate.p95().unwrap_or(0.0),
            max: aggregate.max().unwrap_or(0.0),
        }
    }

    /// A degenerate single-measurement snapshot (mean = min = max = `x`).
    pub fn single(x: f64) -> TrialStats {
        TrialStats {
            trials: 1,
            mean: x,
            ci95: 0.0,
            min: x,
            median: x,
            p95: x,
            max: x,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_measure(ctx: &TrialCtx) -> Vec<f64> {
        let mut rng = ctx.rng.clone();
        (0..3)
            .map(|p| (p * 1000) as f64 + rng.below(100) as f64)
            .collect()
    }

    #[test]
    fn aggregates_are_identical_across_job_counts() {
        let reference = TrialRunner::new(16, 1).run_matrix(7, noisy_measure);
        for jobs in [2, 3, 8, 32] {
            let parallel = TrialRunner::new(16, jobs).run_matrix(7, noisy_measure);
            assert_eq!(reference, parallel, "jobs={jobs} must not change results");
        }
    }

    #[test]
    fn trials_actually_vary_with_the_split_stream() {
        let aggs = TrialRunner::new(16, 4).run_matrix(7, noisy_measure);
        assert_eq!(aggs.len(), 3);
        for agg in &aggs {
            assert_eq!(agg.count(), 16);
            assert!(
                agg.ci95_half_width() > 0.0,
                "independent trials should spread: {agg}"
            );
        }
    }

    #[test]
    fn run_point_aggregates_scalars() {
        let agg = TrialRunner::new(5, 2).run_point(1, |ctx| ctx.index as f64);
        assert_eq!(agg.count(), 5);
        assert_eq!(agg.mean(), 2.0);
        assert_eq!(agg.min(), Some(0.0));
        assert_eq!(agg.max(), Some(4.0));
    }

    #[test]
    fn trial_zero_seed_is_the_base_seed() {
        let base = SimRng::seed(9);
        let seeds: Vec<u64> = (0..3u64)
            .map(|i| {
                TrialCtx {
                    index: i,
                    rng: base.split(i),
                }
                .seed(0xDEAD)
            })
            .collect();
        assert_eq!(seeds[0], 0xDEAD, "trial 0 preserves the historical seed");
        assert_ne!(seeds[1], seeds[0]);
        assert_ne!(seeds[2], seeds[1]);
        assert_ne!(seeds[2], seeds[0]);
    }

    #[test]
    #[should_panic(expected = "trial 0 measured")]
    fn ragged_trial_vectors_panic() {
        TrialRunner::new(3, 1).run_matrix(0, |ctx| vec![0.0; 1 + ctx.index as usize]);
    }

    #[test]
    fn stats_snapshot_matches_aggregate() {
        let mut agg = Aggregate::new();
        for x in [2.0, 4.0, 9.0] {
            agg.record(x);
        }
        let s = TrialStats::from_aggregate(&agg);
        assert_eq!(s.trials, 3);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.median, 4.0);
        assert_eq!(s.max, 9.0);
        let one = TrialStats::single(7.0);
        assert_eq!((one.trials, one.mean, one.ci95), (1, 7.0, 0.0));
        assert_eq!(one.median, 7.0);
    }

    #[test]
    fn runner_clamps_to_at_least_one() {
        let r = TrialRunner::new(0, 0);
        assert_eq!((r.trials(), r.jobs()), (1, 1));
        assert!(default_jobs() >= 1);
    }
}
