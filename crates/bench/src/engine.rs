//! The adaptive-precision, multi-core experiment engine.
//!
//! Every headline claim of the paper is probabilistic (the Theorem 3.1/4.1
//! completion bounds hold *with high probability*), so a single measurement
//! per sweep point says little. [`TrialRunner`] runs independent trials per
//! experiment and folds the per-trial measurements into streaming
//! aggregates ([`amac_sim::stats::Aggregate`]: Welford mean/variance plus a
//! reservoir for median/p95), fanned out over a scoped `std::thread` worker
//! pool.
//!
//! Three engine features stack on that base:
//!
//! * **Within-trial parallelism** ([`TrialRunner::run_sweep`]): the unit of
//!   scheduling is a `(sweep point, trial)` *cell*, not a whole trial, so a
//!   seven-point sweep no longer serializes on its slowest point — even a
//!   single-trial deterministic experiment fans its points over the pool.
//!   Per-trial shared state (a sampled topology) is built once by a `setup`
//!   closure and shared read-only by that trial's cells.
//! * **Adaptive trial counts** ([`TrialRunner::with_target_ci`]): trials run
//!   in deterministic batches (cumulative sizes `floor, 2·floor, 4·floor, …,
//!   cap`), and a sweep point stops recruiting once its Student-t 95% CI
//!   half-width falls below the target fraction of its mean — low-variance
//!   points stop at the floor while noisy points keep sampling up to the
//!   cap.
//! * **Outlier trace capture** ([`TrialRunner::with_trace_capture`]): after
//!   the sweep, the engine deterministically *re-runs* the min-, median-,
//!   and max-valued trial of every point with MAC-trace recording and
//!   validation enabled — the interesting behaviour of a w.h.p. bound lives
//!   in the tail, and the replayed [`amac_mac::trace::Trace`] is the
//!   post-mortem record of it.
//!
//! ## Determinism contract
//!
//! Results are **bit-identical regardless of the worker count**:
//!
//! * trial `i` draws all of its randomness from `SimRng::seed(base).split(i)`
//!   and cell `(i, p)` from a further split — pure functions of the
//!   experiment seed and the indices, never of scheduling;
//! * workers only *compute* cells; the fold into aggregates happens in
//!   `(point, trial)` order afterwards;
//! * batch boundaries are fixed up front, and the adaptive stop decision for
//!   a point is taken only at a boundary, from that point's folded
//!   aggregate — a function of the data alone.
//!
//! So `--jobs 1` and `--jobs 64` print byte-identical tables — including
//! adaptive per-point trial counts — and a table can be reproduced on any
//! machine from `(seed, trials, max-trials, target-ci)` alone.
//!
//! ```
//! use amac_bench::engine::{CellResult, TrialRunner};
//!
//! // Adaptive: floor 4 trials, cap 32, stop at a 20% relative CI.
//! let runner = TrialRunner::new(4, 2).with_max_trials(32).with_target_ci(0.2);
//! let run = runner.run_sweep(
//!     42,
//!     &[1, 1], // two sweep points, one measured value each
//!     |_trial| (),
//!     |_setup, cell| {
//!         let mut rng = cell.rng.clone();
//!         // Point 0 is noisy, point 1 is deterministic.
//!         let noise = if cell.point == 0 { rng.below(100) as f64 } else { 0.0 };
//!         CellResult::scalar(500.0 + noise)
//!     },
//! );
//! // The zero-variance point stopped at the floor; results are
//! // byte-identical for any worker count.
//! assert_eq!(run.point(1).trials(), 4);
//! assert!(run.point(0).trials() >= 4);
//! ```

use amac_mac::trace::Trace;
use amac_mac::ValidationReport;
use amac_sim::stats::Aggregate;
use amac_sim::{ShardStats, SimRng};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Per-trial context handed to the measurement closure.
#[derive(Clone, Debug)]
pub struct TrialCtx {
    /// The trial index in `0..trials`.
    pub index: u64,
    /// This trial's private random stream, `SimRng::seed(base).split(index)`.
    /// Clone it before drawing if the closure needs `&mut` access.
    pub rng: SimRng,
}

impl TrialCtx {
    /// A per-trial `u64` seed derived from an experiment's historical base
    /// seed. Trial 0 returns `base` **unchanged**, so a single-trial run
    /// reproduces the pre-engine tables exactly; later trials mix `base`
    /// with this trial's split stream.
    pub fn seed(&self, base: u64) -> u64 {
        if self.index == 0 {
            base
        } else {
            self.rng.clone().next() ^ base
        }
    }
}

/// Salt separating a cell's private random stream from its trial's stream
/// (and from the node/scheduler streams experiments derive themselves).
const CELL_STREAM_SALT: u64 = 0xCE11_5EED_0000_0000;

/// Per-cell context handed to [`TrialRunner::run_sweep`]'s measurement
/// closure: one *cell* is one `(sweep point, trial)` pair, the engine's
/// unit of parallel scheduling.
#[derive(Clone, Debug)]
pub struct CellCtx {
    /// The owning trial (shared by all points of that trial).
    pub trial: TrialCtx,
    /// The sweep-point index in `0..widths.len()`.
    pub point: usize,
    /// This cell's private random stream,
    /// `trial.rng.split(CELL_SALT ^ point)` — independent per `(trial,
    /// point)` pair so sibling points of one trial can run concurrently.
    pub rng: SimRng,
    capture: bool,
}

impl CellCtx {
    /// `true` when the engine is replaying this cell to capture its MAC
    /// trace: the closure should run with trace recording and validation
    /// enabled and attach the result via [`CellResult::with_capture`].
    pub fn capture_requested(&self) -> bool {
        self.capture
    }

    /// The owning trial's derived seed (see [`TrialCtx::seed`]).
    pub fn seed(&self, base: u64) -> u64 {
        self.trial.seed(base)
    }
}

/// A captured execution bundle: the MAC-level trace of one run plus the
/// post-hoc validator verdict on it.
#[derive(Clone, Debug)]
pub struct CellCapture {
    /// The recorded MAC-level event trace.
    pub trace: Trace,
    /// The validator's verdict on that trace, when the experiment ran it.
    pub validation: Option<ValidationReport>,
}

/// What one cell measured: a fixed-width vector of values (the point's
/// *lanes*; lane 0 is the primary measurement adaptive stopping and
/// outlier selection key on) plus, on a capture replay, the trace bundle.
#[derive(Clone, Debug)]
pub struct CellResult {
    values: Vec<f64>,
    capture: Option<CellCapture>,
    shard_stats: Option<ShardStats>,
}

impl CellResult {
    /// A single-lane measurement.
    pub fn scalar(value: f64) -> CellResult {
        CellResult {
            values: vec![value],
            capture: None,
            shard_stats: None,
        }
    }

    /// A multi-lane measurement (the length must match the point's declared
    /// width).
    pub fn vector(values: Vec<f64>) -> CellResult {
        CellResult {
            values,
            capture: None,
            shard_stats: None,
        }
    }

    /// Attaches a captured trace bundle (only meaningful when
    /// [`CellCtx::capture_requested`] was `true`; `None` is a no-op so
    /// experiments can pass `report.trace`-derived options unconditionally).
    pub fn with_capture(mut self, capture: Option<CellCapture>) -> CellResult {
        self.capture = capture;
        self
    }

    /// Attaches the cell's sharded-queue statistics; the engine folds them
    /// across all cells via [`ShardStats::merge`] and surfaces the total on
    /// [`SweepRun::shard_stats`]. `None` (a sequential run) is a no-op, so
    /// experiments can pass `report.shard_stats` unconditionally.
    pub fn with_shard_stats(mut self, stats: Option<ShardStats>) -> CellResult {
        self.shard_stats = stats;
        self
    }
}

impl From<f64> for CellResult {
    fn from(value: f64) -> CellResult {
        CellResult::scalar(value)
    }
}

/// Which order statistic of a sweep point an outlier trace represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutlierRole {
    /// The fastest (smallest lane-0 value) trial.
    Min,
    /// The median trial (lower median for even counts).
    Median,
    /// The slowest (largest lane-0 value) trial — where w.h.p. bounds are
    /// actually stressed.
    Max,
}

impl OutlierRole {
    /// Lower-case label for filenames and table notes.
    pub fn as_str(self) -> &'static str {
        match self {
            OutlierRole::Min => "min",
            OutlierRole::Median => "median",
            OutlierRole::Max => "max",
        }
    }
}

impl fmt::Display for OutlierRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One captured outlier execution of a sweep point: which trial, what it
/// measured, and the replayed trace with its validation verdict.
#[derive(Clone, Debug)]
pub struct OutlierTrace {
    /// Order statistic this trial realizes for its point.
    pub role: OutlierRole,
    /// The trial index that was replayed.
    pub trial: u64,
    /// The trial's lane-0 (primary) measurement.
    pub value: f64,
    /// The replayed MAC-level trace.
    pub trace: Trace,
    /// Validator verdict on the replayed trace.
    pub validation: Option<ValidationReport>,
}

/// Result of one sweep point: per-lane aggregates over however many trials
/// the point ran, the adaptive-stop flag, and any captured outlier traces.
#[derive(Clone, Debug)]
pub struct PointRun {
    aggregates: Vec<Aggregate>,
    converged: bool,
    outliers: Vec<OutlierTrace>,
}

impl PointRun {
    /// The primary (lane-0) aggregate — the measurement adaptive stopping
    /// and outlier selection key on.
    pub fn primary(&self) -> &Aggregate {
        &self.aggregates[0]
    }

    /// One lane's aggregate.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range for the point's declared width.
    pub fn lane(&self, lane: usize) -> &Aggregate {
        &self.aggregates[lane]
    }

    /// All lanes in declaration order.
    pub fn lanes(&self) -> &[Aggregate] {
        &self.aggregates
    }

    /// Number of trials this point actually ran (adaptive points stop
    /// early; fixed-count points run exactly the configured number).
    pub fn trials(&self) -> u64 {
        self.primary().count()
    }

    /// `true` when the point met the relative-CI target before the trial
    /// cap (always `false` in fixed-count mode).
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Captured min/median/max outlier traces (empty unless the runner had
    /// [`TrialRunner::with_trace_capture`] enabled and the experiment
    /// supports capture).
    pub fn outliers(&self) -> &[OutlierTrace] {
        &self.outliers
    }
}

/// Result of a whole [`TrialRunner::run_sweep`] call.
#[derive(Clone, Debug)]
pub struct SweepRun {
    points: Vec<PointRun>,
    shard_stats: Option<ShardStats>,
}

impl SweepRun {
    /// All sweep points in declaration order.
    pub fn points(&self) -> &[PointRun] {
        &self.points
    }

    /// Sharded-queue statistics merged over every measured cell
    /// ([`ShardStats::merge`] is commutative, so the total is independent
    /// of `--jobs`), or `None` when no cell reported any (sequential
    /// runs). Outlier-capture replays are excluded — they re-run cells
    /// already counted.
    pub fn shard_stats(&self) -> Option<&ShardStats> {
        self.shard_stats.as_ref()
    }

    /// One sweep point.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn point(&self, index: usize) -> &PointRun {
        &self.points[index]
    }

    /// The smallest per-point trial count (the floor in adaptive runs).
    pub fn min_trials(&self) -> u64 {
        self.points.iter().map(PointRun::trials).min().unwrap_or(0)
    }

    /// The largest per-point trial count.
    pub fn max_trials(&self) -> u64 {
        self.points.iter().map(PointRun::trials).max().unwrap_or(0)
    }
}

/// Fans independent trials out over a worker pool and aggregates the
/// results deterministically. See the [module docs](self) for the
/// determinism contract and the three engine features (within-trial
/// parallelism, adaptive trial counts, outlier trace capture).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrialRunner {
    trials: usize,
    jobs: usize,
    max_trials: usize,
    target_ci: Option<f64>,
    capture: bool,
    plots: bool,
    shards: usize,
    shard_threads: usize,
}

impl TrialRunner {
    /// Creates a fixed-count runner for `trials` trials over `jobs` worker
    /// threads (both clamped to at least 1).
    pub fn new(trials: usize, jobs: usize) -> TrialRunner {
        let trials = trials.max(1);
        TrialRunner {
            trials,
            jobs: jobs.max(1),
            max_trials: trials,
            target_ci: None,
            capture: false,
            plots: false,
            shards: 0,
            shard_threads: 0,
        }
    }

    /// One trial, inline — the historical single-measurement behaviour.
    pub fn single() -> TrialRunner {
        TrialRunner::new(1, 1)
    }

    /// `trials` trials over one worker per available core.
    pub fn with_default_jobs(trials: usize) -> TrialRunner {
        TrialRunner::new(trials, default_jobs())
    }

    /// Enables adaptive trial counts: a sweep point stops recruiting trials
    /// once its 95% CI half-width is at most `frac` of its mean's
    /// magnitude (checked at fixed batch boundaries, floor
    /// [`trials`](Self::trials), cap [`max_trials`](Self::max_trials) —
    /// raise the cap with [`with_max_trials`](Self::with_max_trials) or
    /// adaptivity has no room above the floor).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < frac < 1`.
    pub fn with_target_ci(mut self, frac: f64) -> TrialRunner {
        assert!(
            frac > 0.0 && frac < 1.0,
            "target CI fraction must be in (0, 1), got {frac}"
        );
        self.target_ci = Some(frac);
        self
    }

    /// Sets the adaptive trial cap (clamped to at least the floor).
    pub fn with_max_trials(mut self, max_trials: usize) -> TrialRunner {
        self.max_trials = max_trials.max(self.trials);
        self
    }

    /// Enables (or disables) outlier trace capture: after the sweep, the
    /// min/median/max trial of every point is replayed with MAC-trace
    /// recording and validation.
    pub fn with_trace_capture(mut self, capture: bool) -> TrialRunner {
        self.capture = capture;
        self
    }

    /// Enables (or disables) distribution plots: experiments append an
    /// ASCII histogram/CDF of each sweep point's per-trial samples (from
    /// the aggregate's [`Reservoir`](amac_sim::stats::Reservoir)) to their
    /// tables. Rendering reads the deterministically folded samples, so
    /// plots are byte-identical across `--jobs` like everything else.
    pub fn with_plots(mut self, plots: bool) -> TrialRunner {
        self.plots = plots;
        self
    }

    /// This runner clamped to a single trial, for fully deterministic
    /// workloads where extra trials would re-measure byte-identical
    /// values: the sweep runs once instead of `trials` times. Trace
    /// capture is preserved (all three outlier roles collapse onto
    /// trial 0); within-trial parallelism still fans the points out.
    pub fn deterministic(&self) -> TrialRunner {
        TrialRunner {
            trials: 1,
            jobs: self.jobs,
            max_trials: 1,
            target_ci: None,
            capture: self.capture,
            plots: self.plots,
            shards: self.shards,
            shard_threads: self.shard_threads,
        }
    }

    /// Number of trials per run (the floor in adaptive mode).
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Worker thread count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Adaptive trial cap (equals [`trials`](Self::trials) unless raised).
    pub fn max_trials(&self) -> usize {
        self.max_trials
    }

    /// The adaptive relative-CI target, if enabled.
    pub fn target_ci(&self) -> Option<f64> {
        self.target_ci
    }

    /// `true` when the runner can actually recruit beyond the floor.
    pub fn adaptive(&self) -> bool {
        self.target_ci.is_some() && self.max_trials > self.trials
    }

    /// `true` when outlier trace capture is enabled.
    pub fn captures_traces(&self) -> bool {
        self.capture
    }

    /// `true` when distribution plots are enabled.
    pub fn plots(&self) -> bool {
        self.plots
    }

    /// Sets the event-queue shard count experiments should run their
    /// workloads with (0 = the sequential runtime). Sharding never changes
    /// measured completion times or validator verdicts (see
    /// `tests/shard_equivalence.rs`), so tables stay byte-identical across
    /// `--shards` except for explicitly exempt wall-clock cells.
    pub fn with_shards(mut self, shards: usize) -> TrialRunner {
        self.shards = shards;
        self
    }

    /// The event-queue shard count (0 = sequential).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Sets the *requested* per-trial shard worker-thread count (0 = the
    /// fused single-core drain). Like `--shards`, threading never changes
    /// a measured value or a delivered byte, so the effective count may be
    /// capped (see
    /// [`effective_shard_threads`](Self::effective_shard_threads)) without
    /// perturbing any output.
    pub fn with_shard_threads(mut self, threads: usize) -> TrialRunner {
        self.shard_threads = threads;
        self
    }

    /// The requested shard worker-thread count (0 = fused drain).
    pub fn shard_threads(&self) -> usize {
        self.shard_threads
    }

    /// The shard worker-thread count each trial actually runs with.
    ///
    /// **Oversubscription policy:** the engine already fans `--jobs`
    /// workers out over the cores, and every one of those workers would
    /// spawn `--shard-threads` scoped shard workers of its own — the
    /// product, not the max, hits the scheduler. The effective per-trial
    /// count is therefore capped at `max(1, cores / jobs)`: with the pool
    /// saturated (`--jobs` = cores) trials run the fused drain's
    /// single-core equivalent (1 thread), and shard threads only unfold
    /// when jobs leave cores idle (e.g. `--jobs 1`, the `scale` default).
    /// Capping is output-invariant: thread count never changes bytes.
    pub fn effective_shard_threads(&self) -> usize {
        if self.shards == 0 || self.shard_threads == 0 {
            return 0;
        }
        self.shard_threads.min((default_jobs() / self.jobs).max(1))
    }

    /// Runs a sweep of `widths.len()` points, each measuring `widths[p]`
    /// values (lanes) per trial, and returns per-point, per-lane
    /// aggregates. This is the engine's main entry point:
    ///
    /// * `setup` builds each trial's shared state (e.g. a sampled
    ///   topology) once; all of that trial's cells read it;
    /// * `measure` computes one `(point, trial)` cell; cells are the unit
    ///   of parallel scheduling, so points of one trial run concurrently;
    /// * adaptive stopping (when configured) retires points whose lane-0
    ///   relative CI meets the target at a batch boundary;
    /// * trace capture (when enabled) deterministically replays each
    ///   point's min/median/max trial afterwards with
    ///   [`CellCtx::capture_requested`] set.
    ///
    /// # Panics
    ///
    /// Panics if a cell returns a value vector whose length differs from
    /// its point's declared width, or if a worker thread panics.
    pub fn run_sweep<S, FS, FM>(
        &self,
        base_seed: u64,
        widths: &[usize],
        setup: FS,
        measure: FM,
    ) -> SweepRun
    where
        S: Send + Sync,
        FS: Fn(&TrialCtx) -> S + Sync,
        FM: Fn(&S, &CellCtx) -> CellResult + Sync,
    {
        let points = widths.len();
        let base = SimRng::seed(base_seed);
        let trial_ctx = |t: usize| TrialCtx {
            index: t as u64,
            rng: base.split(t as u64),
        };
        let cell_ctx = |t: usize, p: usize, capture: bool| {
            let trial = trial_ctx(t);
            let rng = trial.rng.split(CELL_STREAM_SALT ^ p as u64);
            CellCtx {
                trial,
                point: p,
                rng,
                capture,
            }
        };

        // Lane aggregates + retained lane-0 values per point (the values
        // drive outlier selection and nothing else; aggregates fold
        // incrementally in (point, trial) order as batches complete).
        let mut aggregates: Vec<Vec<Aggregate>> = widths
            .iter()
            .map(|&w| vec![Aggregate::new(); w.max(1)])
            .collect();
        let mut lane0: Vec<Vec<f64>> = vec![Vec::new(); points];
        let mut converged = vec![false; points];
        let mut shard_stats: Option<ShardStats> = None;

        let mut done = 0usize;
        for target in batch_boundaries(self.trials, self.max_trials, self.target_ci.is_some()) {
            let active: Vec<usize> = (0..points).filter(|&p| !converged[p]).collect();
            if active.is_empty() || target <= done {
                break;
            }
            let fresh = target - done;
            // One task per (active point, new trial) cell. A trial's shared
            // setup initializes lazily on its first cell (no setup barrier
            // before measurement starts); `OnceLock` runs the setup closure
            // exactly once and setups are pure, so scheduling cannot leak
            // into results.
            let setups: Vec<std::sync::OnceLock<S>> =
                (0..fresh).map(|_| std::sync::OnceLock::new()).collect();
            let results: Vec<CellResult> = self.parallel_map(active.len() * fresh, |i| {
                let (ti, pi) = (i / active.len(), i % active.len());
                let s = setups[ti].get_or_init(|| setup(&trial_ctx(done + ti)));
                measure(s, &cell_ctx(done + ti, active[pi], false))
            });
            // Fold in (point, trial) order — scheduling never leaks in.
            for (pi, &p) in active.iter().enumerate() {
                for ti in 0..fresh {
                    let cell = &results[ti * active.len() + pi];
                    assert_eq!(
                        cell.values.len(),
                        widths[p].max(1),
                        "point {p} trial {} measured {} values, declared width {}",
                        done + ti,
                        cell.values.len(),
                        widths[p].max(1)
                    );
                    lane0[p].push(cell.values[0]);
                    for (aggregate, &x) in aggregates[p].iter_mut().zip(&cell.values) {
                        aggregate.record(x);
                    }
                    if let Some(stats) = &cell.shard_stats {
                        shard_stats
                            .get_or_insert_with(ShardStats::default)
                            .merge(stats);
                    }
                }
            }
            done = target;
            if let Some(frac) = self.target_ci {
                for &p in &active {
                    let primary = &aggregates[p][0];
                    if primary.count() >= self.trials as u64 && primary.relative_ci95() <= frac {
                        converged[p] = true;
                    }
                }
            }
        }

        let outliers = if self.capture {
            self.capture_outliers(&lane0, &trial_ctx, &cell_ctx, &setup, &measure)
        } else {
            vec![Vec::new(); points]
        };

        SweepRun {
            points: aggregates
                .into_iter()
                .zip(converged)
                .zip(outliers)
                .map(|((aggregates, converged), outliers)| PointRun {
                    aggregates,
                    converged,
                    outliers,
                })
                .collect(),
            shard_stats,
        }
    }

    /// Deterministic replay pass: pick each point's min/median/max trial
    /// from the recorded lane-0 values and re-run just those cells with
    /// capture requested. Each needed trial's setup is rebuilt once and
    /// shared by every point replaying that trial, and the replays
    /// themselves run over the worker pool.
    fn capture_outliers<S, FS, FM>(
        &self,
        lane0: &[Vec<f64>],
        trial_ctx: &(dyn Fn(usize) -> TrialCtx + Sync),
        cell_ctx: &(dyn Fn(usize, usize, bool) -> CellCtx + Sync),
        setup: &FS,
        measure: &FM,
    ) -> Vec<Vec<OutlierTrace>>
    where
        S: Send + Sync,
        FS: Fn(&TrialCtx) -> S + Sync,
        FM: Fn(&S, &CellCtx) -> CellResult + Sync,
    {
        let picks: Vec<Vec<(OutlierRole, u64, f64)>> =
            lane0.iter().map(|values| select_outliers(values)).collect();
        // Unique trials across all points, each set up exactly once.
        let mut trials: Vec<u64> = picks.iter().flatten().map(|&(_, trial, _)| trial).collect();
        trials.sort_unstable();
        trials.dedup();
        let setups: Vec<S> =
            self.parallel_map(trials.len(), |i| setup(&trial_ctx(trials[i] as usize)));
        let setup_of =
            |trial: u64| &setups[trials.binary_search(&trial).expect("trial was collected")];
        // Unique (point, trial) replay cells, fanned over the pool.
        let cells: Vec<(usize, u64)> = picks
            .iter()
            .enumerate()
            .flat_map(|(p, roles)| {
                let mut per_point: Vec<u64> = roles.iter().map(|&(_, t, _)| t).collect();
                per_point.sort_unstable();
                per_point.dedup();
                per_point.into_iter().map(move |t| (p, t))
            })
            .collect();
        let captures: Vec<Option<CellCapture>> = self.parallel_map(cells.len(), |i| {
            let (p, trial) = cells[i];
            measure(setup_of(trial), &cell_ctx(trial as usize, p, true)).capture
        });
        let capture_of = |p: usize, trial: u64| {
            let i = cells
                .binary_search(&(p, trial))
                .expect("cell was collected");
            captures[i].clone()
        };

        picks
            .into_iter()
            .enumerate()
            .map(|(p, roles)| {
                roles
                    .into_iter()
                    .filter_map(|(role, trial, value)| {
                        capture_of(p, trial).map(|capture| OutlierTrace {
                            role,
                            trial,
                            value,
                            trace: capture.trace,
                            validation: capture.validation,
                        })
                    })
                    .collect()
            })
            .collect()
    }

    /// Runs `measure` once per trial and folds each position of the
    /// returned vector into its own [`Aggregate`] (all trials must return
    /// vectors of the same length). This is the fixed-count whole-sweep
    /// entry point kept for workloads where one closure must observe the
    /// entire sweep; it ignores the adaptive and capture settings — new
    /// experiments should prefer [`run_sweep`](Self::run_sweep), which
    /// parallelizes within a trial and supports both.
    ///
    /// # Panics
    ///
    /// Panics if trials disagree on the vector length, or if a worker
    /// thread panics.
    pub fn run_matrix<F>(&self, base_seed: u64, measure: F) -> Vec<Aggregate>
    where
        F: Fn(&TrialCtx) -> Vec<f64> + Sync,
    {
        let base = SimRng::seed(base_seed);
        let ctx_for = |i: usize| TrialCtx {
            index: i as u64,
            rng: base.split(i as u64),
        };
        let per_trial: Vec<Vec<f64>> = self.parallel_map(self.trials, |i| measure(&ctx_for(i)));

        let width = per_trial.first().map_or(0, Vec::len);
        let mut aggregates = vec![Aggregate::new(); width];
        // Fold in trial-index order: this is what makes the aggregates
        // independent of worker scheduling.
        for (i, row) in per_trial.iter().enumerate() {
            assert_eq!(
                row.len(),
                width,
                "trial {i} measured {} values, trial 0 measured {width}",
                row.len()
            );
            for (aggregate, &x) in aggregates.iter_mut().zip(row) {
                aggregate.record(x);
            }
        }
        aggregates
    }

    /// Runs `measure` once per trial for a single scalar measurement.
    pub fn run_point<F>(&self, base_seed: u64, measure: F) -> Aggregate
    where
        F: Fn(&TrialCtx) -> f64 + Sync,
    {
        self.run_matrix(base_seed, |ctx| vec![measure(ctx)])
            .pop()
            .expect("run_matrix returned one aggregate per position")
    }

    /// Evaluates `task(i)` for `i in 0..n` over the worker pool and returns
    /// the results in index order. Work-steals via an atomic counter;
    /// determinism comes from writing each result into its index slot.
    fn parallel_map<T, F>(&self, n: usize, task: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        if self.jobs == 1 || n == 1 {
            return (0..n).map(&task).collect();
        }
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let next = AtomicUsize::new(0);
        let workers = self.jobs.min(n);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut done: Vec<(usize, T)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            done.push((i, task(i)));
                        }
                        done
                    })
                })
                .collect();
            for handle in handles {
                for (i, value) in handle.join().expect("engine worker panicked") {
                    slots[i] = Some(value);
                }
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every task index was claimed by a worker"))
            .collect()
    }
}

impl Default for TrialRunner {
    fn default() -> Self {
        TrialRunner::single()
    }
}

/// Cumulative trial counts at which the engine folds results and (in
/// adaptive mode) takes stop decisions: `floor, 2·floor, 4·floor, …, cap`.
/// Fixed up front so the schedule — and therefore every aggregate — is
/// independent of the worker count.
fn batch_boundaries(floor: usize, cap: usize, adaptive: bool) -> Vec<usize> {
    let first = floor.min(cap);
    if !adaptive {
        return vec![floor];
    }
    let mut boundaries = vec![first];
    let mut t = first;
    while t < cap {
        t = t.saturating_mul(2).min(cap);
        boundaries.push(t);
    }
    boundaries
}

/// Picks the `(role, trial, value)` triples to replay for one point:
/// min, (lower) median, and max of the lane-0 values, ties broken toward
/// the lower trial index so the choice is deterministic.
fn select_outliers(values: &[f64]) -> Vec<(OutlierRole, u64, f64)> {
    if values.is_empty() {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[a].total_cmp(&values[b]).then(a.cmp(&b)));
    let pick = |i: usize| (order[i] as u64, values[order[i]]);
    let (min_t, min_v) = pick(0);
    let (med_t, med_v) = pick((order.len() - 1) / 2);
    let (max_t, max_v) = pick(order.len() - 1);
    vec![
        (OutlierRole::Min, min_t, min_v),
        (OutlierRole::Median, med_t, med_v),
        (OutlierRole::Max, max_t, max_v),
    ]
}

/// One worker per available core (1 if the platform will not say).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// A compact, `Copy` snapshot of an [`Aggregate`], carried by
/// [`crate::SweepPoint`] so sweep data stays cheap to pass around.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrialStats {
    /// Number of trials aggregated.
    pub trials: u64,
    /// Mean over trials.
    pub mean: f64,
    /// Half-width of the Student-t 95% confidence interval for the mean
    /// (0 for a single trial).
    pub ci95: f64,
    /// Smallest trial value.
    pub min: f64,
    /// Median trial value.
    pub median: f64,
    /// 95th-percentile trial value.
    pub p95: f64,
    /// Largest trial value.
    pub max: f64,
}

impl TrialStats {
    /// Snapshot of a finished aggregate.
    ///
    /// # Panics
    ///
    /// Panics on an empty aggregate.
    pub fn from_aggregate(aggregate: &Aggregate) -> TrialStats {
        assert!(aggregate.count() > 0, "aggregate holds no trials");
        TrialStats {
            trials: aggregate.count(),
            mean: aggregate.mean(),
            ci95: aggregate.ci95_half_width(),
            min: aggregate.min().unwrap_or(0.0),
            median: aggregate.median().unwrap_or(0.0),
            p95: aggregate.p95().unwrap_or(0.0),
            max: aggregate.max().unwrap_or(0.0),
        }
    }

    /// A degenerate single-measurement snapshot (mean = min = max = `x`).
    pub fn single(x: f64) -> TrialStats {
        TrialStats {
            trials: 1,
            mean: x,
            ci95: 0.0,
            min: x,
            median: x,
            p95: x,
            max: x,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_measure(ctx: &TrialCtx) -> Vec<f64> {
        let mut rng = ctx.rng.clone();
        (0..3)
            .map(|p| (p * 1000) as f64 + rng.below(100) as f64)
            .collect()
    }

    #[test]
    fn aggregates_are_identical_across_job_counts() {
        let reference = TrialRunner::new(16, 1).run_matrix(7, noisy_measure);
        for jobs in [2, 3, 8, 32] {
            let parallel = TrialRunner::new(16, jobs).run_matrix(7, noisy_measure);
            assert_eq!(reference, parallel, "jobs={jobs} must not change results");
        }
    }

    #[test]
    fn trials_actually_vary_with_the_split_stream() {
        let aggs = TrialRunner::new(16, 4).run_matrix(7, noisy_measure);
        assert_eq!(aggs.len(), 3);
        for agg in &aggs {
            assert_eq!(agg.count(), 16);
            assert!(
                agg.ci95_half_width() > 0.0,
                "independent trials should spread: {agg}"
            );
        }
    }

    #[test]
    fn run_point_aggregates_scalars() {
        let agg = TrialRunner::new(5, 2).run_point(1, |ctx| ctx.index as f64);
        assert_eq!(agg.count(), 5);
        assert_eq!(agg.mean(), 2.0);
        assert_eq!(agg.min(), Some(0.0));
        assert_eq!(agg.max(), Some(4.0));
    }

    #[test]
    fn trial_zero_seed_is_the_base_seed() {
        let base = SimRng::seed(9);
        let seeds: Vec<u64> = (0..3u64)
            .map(|i| {
                TrialCtx {
                    index: i,
                    rng: base.split(i),
                }
                .seed(0xDEAD)
            })
            .collect();
        assert_eq!(seeds[0], 0xDEAD, "trial 0 preserves the historical seed");
        assert_ne!(seeds[1], seeds[0]);
        assert_ne!(seeds[2], seeds[1]);
        assert_ne!(seeds[2], seeds[0]);
    }

    #[test]
    #[should_panic(expected = "trial 0 measured")]
    fn ragged_trial_vectors_panic() {
        TrialRunner::new(3, 1).run_matrix(0, |ctx| vec![0.0; 1 + ctx.index as usize]);
    }

    #[test]
    fn stats_snapshot_matches_aggregate() {
        let mut agg = Aggregate::new();
        for x in [2.0, 4.0, 9.0] {
            agg.record(x);
        }
        let s = TrialStats::from_aggregate(&agg);
        assert_eq!(s.trials, 3);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.median, 4.0);
        assert_eq!(s.max, 9.0);
        let one = TrialStats::single(7.0);
        assert_eq!((one.trials, one.mean, one.ci95), (1, 7.0, 0.0));
        assert_eq!(one.median, 7.0);
    }

    #[test]
    fn runner_clamps_to_at_least_one() {
        let r = TrialRunner::new(0, 0);
        assert_eq!((r.trials(), r.jobs()), (1, 1));
        assert!(default_jobs() >= 1);
    }

    // --- run_sweep: within-trial parallelism ---

    /// A sweep whose cell values depend only on (trial, point) and on the
    /// cell's private rng — the engine must produce identical aggregates
    /// for any job count.
    fn sweep_cell(_: &(), cell: &CellCtx) -> CellResult {
        let mut rng = cell.rng.clone();
        CellResult::scalar((cell.point * 1000) as f64 + rng.below(100) as f64)
    }

    #[test]
    fn sweep_is_identical_across_job_counts() {
        let widths = [1, 1, 1, 1];
        let reference = TrialRunner::new(8, 1).run_sweep(7, &widths, |_| (), sweep_cell);
        for jobs in [2, 3, 8, 32] {
            let parallel = TrialRunner::new(8, jobs).run_sweep(7, &widths, |_| (), sweep_cell);
            for (a, b) in reference.points().iter().zip(parallel.points()) {
                assert_eq!(a.lanes(), b.lanes(), "jobs={jobs} must not change results");
            }
        }
    }

    #[test]
    fn sweep_cells_share_their_trials_setup() {
        // Setup derives a per-trial token from the trial rng; every point
        // of that trial must observe the same token (and different trials
        // different tokens).
        let run = TrialRunner::new(4, 3).run_sweep(
            11,
            &[1, 1, 1],
            |trial| trial.rng.clone().next() as f64,
            |token, _| CellResult::scalar(*token),
        );
        let lanes: Vec<&Aggregate> = run.points().iter().map(PointRun::primary).collect();
        assert_eq!(lanes[0], lanes[1]);
        assert_eq!(lanes[1], lanes[2]);
        assert!(
            lanes[0].ci95_half_width() > 0.0,
            "distinct trials saw distinct tokens"
        );
    }

    #[test]
    fn sweep_lanes_fold_in_declared_width() {
        let run = TrialRunner::new(3, 2).run_sweep(
            0,
            &[2, 3],
            |_| (),
            |_, cell| {
                let w = if cell.point == 0 { 2 } else { 3 };
                CellResult::vector((0..w).map(|l| (cell.point * 10 + l) as f64).collect())
            },
        );
        assert_eq!(run.point(0).lanes().len(), 2);
        assert_eq!(run.point(1).lanes().len(), 3);
        assert_eq!(run.point(1).lane(2).mean(), 12.0);
    }

    #[test]
    #[should_panic(expected = "declared width")]
    fn sweep_width_mismatch_panics() {
        TrialRunner::new(2, 1).run_sweep(
            0,
            &[2],
            |_| (),
            |_, _| CellResult::scalar(1.0), // declared 2 lanes, returned 1
        );
    }

    #[test]
    fn cell_streams_differ_across_points_of_one_trial() {
        let run = TrialRunner::new(1, 1).run_sweep(
            5,
            &[1, 1],
            |_| (),
            |_, cell| CellResult::scalar(cell.rng.clone().next() as f64),
        );
        assert_ne!(run.point(0).primary().mean(), run.point(1).primary().mean());
    }

    // --- run_sweep: adaptive trial counts ---

    #[test]
    fn adaptive_stops_converged_points_at_the_floor() {
        let runner = TrialRunner::new(4, 2)
            .with_max_trials(64)
            .with_target_ci(0.1);
        assert!(runner.adaptive());
        let run = runner.run_sweep(
            3,
            &[1, 1],
            |_| (),
            |_, cell| {
                let mut rng = cell.rng.clone();
                match cell.point {
                    0 => CellResult::scalar(1000.0), // zero variance
                    _ => CellResult::scalar(100.0 + rng.below(200) as f64), // very noisy
                }
            },
        );
        assert_eq!(run.point(0).trials(), 4, "flat point stops at the floor");
        assert!(run.point(0).converged());
        assert!(
            run.point(1).trials() > 4,
            "noisy point must recruit beyond the floor"
        );
        assert!(run.point(1).trials() <= 64);
    }

    #[test]
    fn adaptive_respects_the_cap() {
        // A point oscillating around zero never meets a relative target.
        let runner = TrialRunner::new(2, 2)
            .with_max_trials(16)
            .with_target_ci(0.05);
        let run = runner.run_sweep(
            1,
            &[1],
            |_| (),
            |_, cell| CellResult::scalar(if cell.trial.index % 2 == 0 { -1.0 } else { 1.0 }),
        );
        assert_eq!(run.point(0).trials(), 16);
        assert!(!run.point(0).converged());
    }

    #[test]
    fn adaptive_is_identical_across_job_counts() {
        let base = TrialRunner::new(3, 1)
            .with_max_trials(48)
            .with_target_ci(0.15);
        let reference = base.run_sweep(9, &[1, 1, 1], |_| (), sweep_cell);
        for jobs in [2, 8] {
            let runner = TrialRunner::new(3, jobs)
                .with_max_trials(48)
                .with_target_ci(0.15);
            let parallel = runner.run_sweep(9, &[1, 1, 1], |_| (), sweep_cell);
            for (a, b) in reference.points().iter().zip(parallel.points()) {
                assert_eq!(a.trials(), b.trials(), "adaptive counts must match");
                assert_eq!(a.lanes(), b.lanes());
            }
        }
    }

    #[test]
    fn batch_boundaries_double_from_floor_to_cap() {
        assert_eq!(batch_boundaries(4, 4, false), vec![4]);
        assert_eq!(batch_boundaries(4, 40, true), vec![4, 8, 16, 32, 40]);
        assert_eq!(batch_boundaries(5, 5, true), vec![5]);
        assert_eq!(batch_boundaries(1, 3, true), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "target CI fraction")]
    fn target_ci_must_be_a_fraction() {
        let _ = TrialRunner::new(2, 1).with_target_ci(1.5);
    }

    // --- run_sweep: outlier capture ---

    fn capture_cell(_: &(), cell: &CellCtx) -> CellResult {
        let value = (cell.trial.index * 10) as f64;
        let capture = cell.capture_requested().then(|| CellCapture {
            trace: Trace::new(),
            validation: None,
        });
        CellResult::scalar(value).with_capture(capture)
    }

    #[test]
    fn capture_replays_min_median_max_trials() {
        let run = TrialRunner::new(5, 2).with_trace_capture(true).run_sweep(
            0,
            &[1],
            |_| (),
            capture_cell,
        );
        let outliers = run.point(0).outliers();
        assert_eq!(outliers.len(), 3);
        let by_role: Vec<(OutlierRole, u64, f64)> = outliers
            .iter()
            .map(|o| (o.role, o.trial, o.value))
            .collect();
        assert_eq!(by_role[0], (OutlierRole::Min, 0, 0.0));
        assert_eq!(by_role[1], (OutlierRole::Median, 2, 20.0));
        assert_eq!(by_role[2], (OutlierRole::Max, 4, 40.0));
    }

    #[test]
    fn capture_collapses_on_a_single_trial() {
        let run =
            TrialRunner::single()
                .with_trace_capture(true)
                .run_sweep(0, &[1], |_| (), capture_cell);
        let outliers = run.point(0).outliers();
        assert_eq!(outliers.len(), 3, "all three roles exist");
        assert!(outliers.iter().all(|o| o.trial == 0));
    }

    #[test]
    fn capture_off_records_no_outliers() {
        let run = TrialRunner::new(4, 2).run_sweep(0, &[1], |_| (), capture_cell);
        assert!(run.point(0).outliers().is_empty());
    }

    #[test]
    fn cells_that_cannot_capture_yield_no_outliers() {
        let run = TrialRunner::new(4, 2).with_trace_capture(true).run_sweep(
            0,
            &[1],
            |_| (),
            |_: &(), cell: &CellCtx| {
                CellResult::scalar(cell.trial.index as f64) // never attaches a capture
            },
        );
        assert!(run.point(0).outliers().is_empty());
    }

    #[test]
    fn select_outliers_breaks_ties_toward_low_trials() {
        let picks = select_outliers(&[7.0, 7.0, 7.0]);
        assert_eq!(picks[0].1, 0);
        assert_eq!(picks[1].1, 1, "lower median of three equal values");
        assert_eq!(picks[2].1, 2);
        assert!(select_outliers(&[]).is_empty());
    }

    #[test]
    fn deterministic_clamp_keeps_capture_and_jobs() {
        let r = TrialRunner::new(8, 4)
            .with_max_trials(32)
            .with_target_ci(0.1)
            .with_trace_capture(true)
            .deterministic();
        assert_eq!((r.trials(), r.max_trials()), (1, 1));
        assert_eq!(r.jobs(), 4);
        assert!(r.captures_traces());
        assert!(!r.adaptive());
    }
}
