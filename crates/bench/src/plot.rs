//! ASCII distribution plots: per-sweep-point histogram and CDF sparklines
//! rendered from the per-trial samples the engine's reservoir retains.
//!
//! A w.h.p. bound lives in the tail of its distribution, and a mean ± CI
//! column hides that tail. With `repro --plots`, every experiment appends
//! one line per sweep point next to its table:
//!
//! ```text
//! dist n=48: hist |#%:.  . | cdf |.:=#%%%@| n=32 min=412 p50=466 p95=541 max=560
//! ```
//!
//! The histogram bins the samples into [`BINS`] equal-width buckets
//! between the observed min and max and maps each bucket's count onto an
//! ASCII density ramp; the CDF shows the cumulative share per bucket. The
//! samples come out of the deterministic trial-order fold, so plot lines
//! obey the same byte-identical-across-`--jobs` contract as the tables.

use amac_sim::stats::Aggregate;

/// Number of histogram/CDF buckets per plot line.
pub const BINS: usize = 8;

/// ASCII density ramp, sparsest to densest.
const RAMP: &[u8] = b" .:-=+*#%@";

fn ramp_char(fraction: f64) -> char {
    let last = RAMP.len() - 1;
    let idx = (fraction * last as f64).ceil() as usize;
    RAMP[idx.min(last)] as char
}

/// Bucket counts of `samples` over `[min, max]` in `BINS` equal-width
/// buckets. `None` when fewer than two samples or zero spread (nothing to
/// plot).
fn bucket(samples: &[f64]) -> Option<(Vec<u64>, f64, f64)> {
    if samples.len() < 2 {
        return None;
    }
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !(max - min).is_finite() || max <= min {
        return None;
    }
    let mut counts = vec![0u64; BINS];
    for &x in samples {
        let t = ((x - min) / (max - min) * BINS as f64) as usize;
        counts[t.min(BINS - 1)] += 1;
    }
    Some((counts, min, max))
}

/// The histogram sparkline of `samples`, e.g. `|#%:.  . |`, or `None`
/// when there is nothing to plot (fewer than two samples or zero spread).
pub fn histogram(samples: &[f64]) -> Option<String> {
    let (counts, _, _) = bucket(samples)?;
    let peak = *counts.iter().max().expect("BINS > 0") as f64;
    let body: String = counts.iter().map(|&c| ramp_char(c as f64 / peak)).collect();
    Some(format!("|{body}|"))
}

/// The CDF sparkline of `samples`: cumulative share per bucket on the
/// same ramp, e.g. `|.:=#%%%@|`.
pub fn cdf(samples: &[f64]) -> Option<String> {
    let (counts, _, _) = bucket(samples)?;
    let total: u64 = counts.iter().sum();
    let mut acc = 0u64;
    let body: String = counts
        .iter()
        .map(|&c| {
            acc += c;
            ramp_char(acc as f64 / total as f64)
        })
        .collect();
    Some(format!("|{body}|"))
}

/// Renders one value compactly: integers without a fraction, otherwise
/// one decimal.
fn compact(x: f64) -> String {
    if x.fract() == 0.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.1}")
    }
}

/// One full plot line for a labeled sweep point, or `None` when its
/// distribution is degenerate (single trial or zero spread — the mean
/// column already says everything then).
pub fn point_line(label: &str, aggregate: &Aggregate) -> Option<String> {
    let samples = aggregate.samples();
    let hist = histogram(samples)?;
    let cdf = cdf(samples).expect("histogram implies cdf");
    Some(format!(
        "dist {label}: hist {hist} cdf {cdf} n={} min={} p50={} p95={} max={}",
        aggregate.count(),
        compact(aggregate.min().unwrap_or(0.0)),
        compact(aggregate.median().unwrap_or(0.0)),
        compact(aggregate.p95().unwrap_or(0.0)),
        compact(aggregate.max().unwrap_or(0.0)),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aggregate_of(values: &[f64]) -> Aggregate {
        let mut a = Aggregate::new();
        for &x in values {
            a.record(x);
        }
        a
    }

    #[test]
    fn histogram_peaks_where_the_mass_is() {
        let mut values = vec![10.0; 30];
        values.push(90.0);
        let h = histogram(&values).unwrap();
        assert_eq!(h.len(), BINS + 2);
        assert!(h.starts_with("|@"), "mass bucket renders densest: {h}");
        assert!(h.contains(' '), "empty buckets render blank: {h}");
    }

    #[test]
    fn cdf_is_monotone_on_the_ramp() {
        let values: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let c = cdf(&values).unwrap();
        let ranks: Vec<usize> = c
            .trim_matches('|')
            .chars()
            .map(|ch| RAMP.iter().position(|&r| r as char == ch).unwrap())
            .collect();
        assert!(ranks.windows(2).all(|w| w[0] <= w[1]), "not monotone: {c}");
        assert_eq!(*ranks.last().unwrap(), RAMP.len() - 1, "ends at 100%");
    }

    #[test]
    fn degenerate_distributions_render_nothing() {
        assert!(histogram(&[]).is_none());
        assert!(histogram(&[5.0]).is_none());
        assert!(histogram(&[7.0, 7.0, 7.0]).is_none(), "zero spread");
        assert!(point_line("x", &aggregate_of(&[3.0])).is_none());
    }

    #[test]
    fn point_line_carries_label_and_order_stats() {
        let line = point_line("D=32", &aggregate_of(&[1.0, 2.0, 3.0, 4.0])).unwrap();
        assert!(line.starts_with("dist D=32: hist |"));
        assert!(line.contains("n=4"));
        assert!(line.contains("min=1"));
        assert!(line.contains("max=4"));
        assert!(line.contains("p50=2"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let values: Vec<f64> = (0..40).map(|i| ((i * 37) % 100) as f64).collect();
        assert_eq!(histogram(&values), histogram(&values));
        assert_eq!(cdf(&values), cdf(&values));
    }
}
