//! # amac-bench — the Figure 1 reproduction harness
//!
//! Parameter sweeps, scaling-law fits, and table rendering that regenerate
//! every cell of the paper's Figure 1 (the results table) and Figure 2
//! (the lower-bound network), plus the three FMMB subroutine guarantees.
//!
//! Each experiment lives in [`experiments`] and produces both structured
//! data (sweep points, fits) and a rendered [`table::Table`]. The
//! `benches/` targets print these tables under `cargo bench`; the `repro`
//! binary emits the EXPERIMENTS.md dataset.
//!
//! ```no_run
//! // Regenerate the G' = G cell of Figure 1 and print it:
//! let result = amac_bench::experiments::fig1_gg::run_default();
//! println!("{}", result.table);
//! assert!(result.bound_fit.max_ratio < 3.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod fit;
pub mod table;

pub use experiments::SweepPoint;
