//! # amac-bench — the Figure 1 reproduction harness
//!
//! Parameter sweeps, scaling-law fits, and table rendering that regenerate
//! every cell of the paper's Figure 1 (the results table) and Figure 2
//! (the lower-bound network), plus the three FMMB subroutine guarantees.
//!
//! Each experiment lives in [`experiments`] and produces both structured
//! data (sweep points, fits) and a rendered [`table::Table`]. Sweep points
//! are measured by the multi-trial [`engine`] ([`TrialRunner`]): `N`
//! independent trials per experiment, fanned over a worker pool, folded
//! into mean/CI aggregates that are bit-identical for any worker count.
//! The `benches/` targets print these tables under `cargo bench`; the
//! `repro` binary (`--trials N --jobs J`) emits the EXPERIMENTS.md dataset.
//!
//! ```no_run
//! // Regenerate the G' = G cell of Figure 1, 8 trials over 4 workers:
//! use amac_bench::engine::TrialRunner;
//! let result = amac_bench::experiments::fig1_gg::run_default_with(&TrialRunner::new(8, 4));
//! println!("{}", result.table);
//! assert!(result.bound_fit.max_ratio < 3.0);
//! ```

pub mod check;
pub mod engine;
pub mod experiments;
pub mod fit;
pub mod json;
pub mod plot;
pub mod record;
pub mod table;

pub use engine::{TrialRunner, TrialStats};
pub use experiments::SweepPoint;
pub use record::{CanonicalOpts, CanonicalRun, RecordedTrace};
