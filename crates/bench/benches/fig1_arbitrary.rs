//! `cargo bench --bench fig1_arbitrary` — regenerates this cell of the paper's
//! Figure 1 and prints the measured table (see DESIGN.md §5).

fn main() {
    let result = amac_bench::experiments::fig1_arbitrary::run_default();
    println!("{}", result.table);
}
