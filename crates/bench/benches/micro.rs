//! `cargo bench --bench micro` — Criterion micro-benchmarks of the
//! simulation substrate and the end-to-end algorithms (engineering
//! throughput, not paper claims).

// `criterion_group!` expands to undocumented public functions.
#![allow(missing_docs)]

use amac_core::{run_bmmb, Assignment, RunOptions};
use amac_graph::{generators, DualGraph, NodeId};
use amac_mac::policies::{EagerPolicy, LazyPolicy};
use amac_mac::MacConfig;
use amac_sim::{EventQueue, SimRng, Time};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter_batched(
            || {
                let mut rng = SimRng::seed(1);
                (0..10_000u64)
                    .map(|i| (Time::from_ticks(rng.below(1 << 20)), i))
                    .collect::<Vec<_>>()
            },
            |items| {
                let mut q = EventQueue::new();
                for (t, v) in items {
                    q.schedule(t, v);
                }
                let mut acc = 0u64;
                while let Some((_, v)) = q.pop() {
                    acc = acc.wrapping_add(v);
                }
                black_box(acc)
            },
            BatchSize::SmallInput,
        );
    });
}

/// The runtime hot path at scale: a k=2 BMMB flood over a 1,000-node line
/// under the eager scheduler (~10⁴ events per run), measured bare and with
/// the streaming validator attached. Criterion reports seconds per run;
/// events/sec = events ÷ mean time. The pre-refactor pin for this workload
/// (trace-recording runtime + post-hoc validation) is recorded in
/// `experiments::scale::PRE_REFACTOR_PIN_EVENTS_PER_SEC` — the observer
/// refactor's ≥2× claim is measured against it.
fn bench_runtime_hot_path(c: &mut Criterion) {
    let dual = DualGraph::reliable(generators::line(1000).unwrap());
    let cfg = MacConfig::from_ticks(2, 32);
    let assignment = Assignment::all_at(NodeId::new(0), 2);
    c.bench_function("flood_line1k_k2_fast", |b| {
        b.iter(|| {
            let report = run_bmmb(
                black_box(&dual),
                cfg,
                &assignment,
                EagerPolicy::new(),
                &RunOptions::fast(),
            );
            black_box(report.counters.get("events"))
        });
    });
    c.bench_function("flood_line1k_k2_validated", |b| {
        b.iter(|| {
            let report = run_bmmb(
                black_box(&dual),
                cfg,
                &assignment,
                EagerPolicy::new(),
                &RunOptions::default(),
            );
            assert!(report
                .validation
                .as_ref()
                .is_some_and(amac_mac::ValidationReport::is_ok));
            black_box(report.counters.get("events"))
        });
    });
}

/// The fused-vs-threaded sharded drain on the scale experiment's grid
/// workload at a fixed small size: a k=2 BMMB flood over an n=4,096
/// jittered-grid dual (`G′ = G`), run on 4 event-queue shards with the
/// fused single-core coordinator and with the thread-per-shard drain
/// (2 and 4 workers). The execution is byte-identical across all three
/// (asserted via the event counter); only wall clock may differ. The
/// ratio `flood_grid_sharded_fused / flood_grid_sharded_threads_t4` is
/// the pin recorded in `BENCH_scale.json`'s headline note — regressions
/// in the scoped-barrier path show up here first, at a size small enough
/// for Criterion yet large enough for non-trivial per-shard windows.
fn bench_sharded_threads(c: &mut Criterion) {
    let n = 4096;
    let mut rng = SimRng::seed(0x5CA1E ^ n as u64);
    let net = generators::grid_grey_zone_network(n, 0.0, &mut rng).expect("n >= 1");
    let cfg = MacConfig::from_ticks(2, 32);
    let assignment = Assignment::all_at(NodeId::new(0), 2);
    let baseline = run_bmmb(
        &net.dual,
        cfg,
        &assignment,
        EagerPolicy::new(),
        &RunOptions::fast().with_shards(4),
    )
    .counters
    .get("events");
    let mut bench = |name: &str, threads: usize| {
        c.bench_function(name, |b| {
            b.iter(|| {
                let report = run_bmmb(
                    black_box(&net.dual),
                    cfg,
                    &assignment,
                    EagerPolicy::new(),
                    &RunOptions::fast()
                        .with_shards(4)
                        .with_shard_threads(threads),
                );
                let events = report.counters.get("events");
                assert_eq!(events, baseline, "thread count must never change events");
                black_box(events)
            });
        });
    };
    bench("flood_grid_sharded_fused", 0);
    bench("flood_grid_sharded_threads_t2", 2);
    bench("flood_grid_sharded_threads_t4", 4);
}

fn bench_bmmb(c: &mut Criterion) {
    let dual = DualGraph::reliable(generators::line(64).unwrap());
    let cfg = MacConfig::from_ticks(2, 32);
    let assignment = Assignment::all_at(NodeId::new(0), 4);
    c.bench_function("bmmb_line64_k4_eager", |b| {
        b.iter(|| {
            let report = run_bmmb(
                black_box(&dual),
                cfg,
                &assignment,
                EagerPolicy::new(),
                &RunOptions::fast(),
            );
            black_box(report.completion_ticks())
        });
    });
    c.bench_function("bmmb_line64_k4_lazy", |b| {
        b.iter(|| {
            let report = run_bmmb(
                black_box(&dual),
                cfg,
                &assignment,
                LazyPolicy::new().prefer_duplicates(),
                &RunOptions::fast(),
            );
            black_box(report.completion_ticks())
        });
    });
}

fn bench_topology(c: &mut Criterion) {
    c.bench_function("grey_zone_sample_n100", |b| {
        let mut rng = SimRng::seed(7);
        b.iter(|| {
            let net =
                generators::grey_zone_network(&generators::GreyZoneConfig::new(100, 7.0), &mut rng)
                    .unwrap();
            black_box(net.dual.len())
        });
    });
    c.bench_function("diameter_grid_20x20", |b| {
        let g = generators::grid(20, 20).unwrap();
        b.iter(|| black_box(amac_graph::algo::diameter(black_box(&g))));
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_runtime_hot_path,
    bench_sharded_threads,
    bench_bmmb,
    bench_topology
);
criterion_main!(benches);
