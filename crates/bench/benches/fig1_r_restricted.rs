//! `cargo bench --bench fig1_r_restricted` — regenerates this cell of the paper's
//! Figure 1 and prints the measured table (see DESIGN.md §5).

fn main() {
    let result = amac_bench::experiments::fig1_r_restricted::run_default();
    println!("{}", result.table);
}
