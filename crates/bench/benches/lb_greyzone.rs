//! `cargo bench --bench lb_greyzone` — Figure 2 dual-line lower bound
//! (`Ω(D·F_ack)`, Lemmas 3.19-3.20), experiment id `F2-LB-D`.

fn main() {
    let result = amac_bench::experiments::lower_bounds::run_default();
    println!("{}", result.table);
    println!(
        "dual-line slope {:.1} ticks per hop (Θ(F_ack)); min ratio {:.2}",
        result.line_fit.slope, result.line_min_ratio
    );
}
