//! `cargo bench --bench lb_star` — Lemma 3.18 choke-star lower bound
//! (`Ω(k·F_ack)`), experiment id `F1-LB-K`.

fn main() {
    let result = amac_bench::experiments::lower_bounds::run_default();
    println!("{}", result.table);
    println!(
        "choke-star min ratio {:.2} (must stay above a positive constant)",
        result.star_min_ratio
    );
}
