//! `cargo bench --bench ablation_abort` — quantifies the value of the
//! enhanced MAC layer's abort interface (the paper's conclusion).

fn main() {
    let result = amac_bench::experiments::ablation_abort::run_default();
    println!("{}", result.table);
}
