//! `cargo bench --bench sub_gather` — FMMB subroutine measurement (Lemmas
//! 4.5-4.8), experiment ids SUB-MIS / SUB-GATHER / SUB-SPREAD.

fn main() {
    let result = amac_bench::experiments::subroutines::run_default();
    println!("{}", result.table);
}
