//! The engine's determinism contract, end to end: with a fixed seed, the
//! rendered experiment tables must be **byte-identical** for `jobs = 1`
//! and `jobs = 8` — worker scheduling must never leak into results.

use amac_bench::engine::TrialRunner;
use amac_bench::experiments;

fn assert_jobs_invariant(render: impl Fn(&TrialRunner) -> String, label: &str) {
    let serial = render(&TrialRunner::new(4, 1));
    let parallel = render(&TrialRunner::new(4, 8));
    assert_eq!(
        serial, parallel,
        "{label}: jobs=1 and jobs=8 must render byte-identical tables"
    );
}

#[test]
fn fmmb_tables_are_jobs_invariant() {
    // The most randomness-heavy experiment: grey-zone sampling, random
    // assignments, and FMMB coin flips all flow from the trial seed.
    assert_jobs_invariant(
        |r| {
            experiments::fig1_fmmb::run(2, &[8, 32], 12, &[12], 2.0, 2, 5, r)
                .table
                .to_string()
        },
        "F1-ENH",
    );
}

#[test]
fn r_restricted_tables_are_jobs_invariant() {
    assert_jobs_invariant(
        |r| {
            experiments::fig1_r_restricted::run(
                amac_mac::MacConfig::from_ticks(2, 32),
                8,
                2,
                &[1, 2],
                0.5,
                11,
                r,
            )
            .table
            .to_string()
        },
        "F1-RR",
    );
}

#[test]
fn ablation_tables_are_jobs_invariant() {
    assert_jobs_invariant(
        |r| {
            experiments::ablation_abort::run(2, &[8, 32], 12, 2.0, 2, 6, r)
                .table
                .to_string()
        },
        "ABL-ABORT",
    );
}

#[test]
fn markdown_rendering_is_jobs_invariant_too() {
    assert_jobs_invariant(
        |r| {
            experiments::subroutines::run(2, &[8, 12], &[1, 2], 2.0, &[1], r)
                .table
                .to_markdown()
        },
        "SUB-*",
    );
}

#[test]
fn consensus_crash_tables_are_jobs_invariant() {
    // The new fault-injection path adds scheduling-sensitive surface
    // (crash schedules, decision tracking): sweep two crash fractions and
    // a size point, with distribution plots on — table plus plot lines
    // must be byte-identical across worker counts.
    assert_jobs_invariant(
        |r| {
            experiments::consensus_crash::run(
                2,
                12,
                10,
                &[0.0, 0.3],
                &[8],
                0.25,
                13,
                &r.with_plots(true),
            )
            .table
            .to_string()
        },
        "CONS",
    );
}

#[test]
fn election_tables_are_jobs_invariant() {
    assert_jobs_invariant(
        |r| {
            experiments::election::run(2, 12, 24, &[10, 14], 2.0, 17, &r.with_plots(true))
                .table
                .to_string()
        },
        "ELECT",
    );
}

#[test]
fn adaptive_tables_are_jobs_invariant() {
    // Adaptive mode adds a second scheduling-sensitive surface: per-point
    // trial counts. Both the counts and the aggregates must be identical
    // across worker counts (batch boundaries are fixed, stop decisions are
    // functions of folded data only).
    let render = |jobs: usize| {
        let runner = TrialRunner::new(3, jobs)
            .with_max_trials(24)
            .with_target_ci(0.2);
        experiments::fig1_fmmb::run(2, &[8, 32], 12, &[12], 2.0, 2, 5, &runner)
            .table
            .to_string()
    };
    assert_eq!(
        render(1),
        render(8),
        "F1-ENH adaptive: jobs=1 and jobs=8 must render byte-identical tables"
    );
}

#[test]
fn adaptive_mode_stops_low_variance_sweeps_early() {
    // r = 1 cannot add any edge to the line, so every trial measures the
    // same topology: the CI collapses to zero at the floor and the point
    // must stop there instead of burning trials up to the cap.
    let runner = TrialRunner::new(2, 2)
        .with_max_trials(32)
        .with_target_ci(0.1);
    let res = experiments::fig1_r_restricted::run(
        amac_mac::MacConfig::from_ticks(2, 32),
        8,
        2,
        &[1],
        0.5,
        11,
        &runner,
    );
    assert_eq!(
        res.r_sweep[0].measured.trials, 2,
        "zero-variance point must stop at the floor"
    );
    assert!(res.r_sweep[0].measured.trials < runner.max_trials() as u64);
}

#[test]
fn captured_outlier_traces_pass_the_validator() {
    // The engine replays each point's min/median/max trial with trace
    // recording; the replayed executions must conform to the MAC model.
    let runner = TrialRunner::new(2, 2).with_trace_capture(true);
    let res = experiments::fig1_fmmb::run(2, &[8], 12, &[12], 2.0, 2, 5, &runner);
    assert!(!res.outliers.is_empty(), "capture must retain outliers");
    for o in &res.outliers {
        assert!(!o.outlier.trace.is_empty(), "{}: empty trace", o.label);
        let verdict = o
            .outlier
            .validation
            .as_ref()
            .expect("capture replays validate");
        assert!(verdict.is_ok(), "{}: {verdict}", o.label);
    }
    // Capture itself must not perturb measurements: same sweep without
    // capture renders the identical table.
    let plain = experiments::fig1_fmmb::run(2, &[8], 12, &[12], 2.0, 2, 5, &TrialRunner::new(2, 2));
    let captured = res.table.to_string();
    assert_eq!(captured, plain.table.to_string());
}

/// Drops the named columns from a rendered table, keeping everything else
/// (cell-level masking — no regex, just header-name lookup).
fn strip_columns(
    table: &amac_bench::table::Table,
    exempt: &[&str],
) -> (Vec<String>, Vec<Vec<String>>) {
    let cols: Vec<usize> = exempt
        .iter()
        .map(|name| {
            table
                .headers()
                .iter()
                .position(|h| h == name)
                .unwrap_or_else(|| panic!("column {name} present"))
        })
        .collect();
    let keep = |i: &usize| !cols.contains(i);
    let headers: Vec<String> = table
        .headers()
        .iter()
        .enumerate()
        .filter(|(i, _)| keep(i))
        .map(|(_, h)| h.clone())
        .collect();
    let rows: Vec<Vec<String>> = table
        .rows()
        .iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .filter(|(i, _)| keep(i))
                .map(|(_, c)| c.clone())
                .collect()
        })
        .collect();
    (headers, rows)
}

#[test]
fn scale_tables_are_jobs_invariant_modulo_wall_clock() {
    // The scale experiment's four wall-clock throughput columns (and the
    // speedup ratio derived from two of them) are exempt from the
    // byte-identity contract (like the JSON wall clock); every other
    // cell — events, instances, completion, validator peaks, shard
    // diagnostics, violations — must be byte-identical across worker
    // counts.
    const WALL: &[&str] = &["seq ev/s", "fused ev/s", "thr ev/s", "thr/fused"];
    let serial = experiments::scale::run(&[200, 600], &TrialRunner::new(4, 1));
    let parallel = experiments::scale::run(&[200, 600], &TrialRunner::new(4, 8));
    assert_eq!(
        strip_columns(&serial.table, WALL),
        strip_columns(&parallel.table, WALL),
        "SCALE: jobs=1 and jobs=8 must agree on every deterministic cell"
    );
}

#[test]
fn scale_tables_are_shards_invariant_modulo_diagnostics() {
    // `--shards K` (and `--shard-threads T`) replay the identical event
    // sequence (proven trace-level in tests/shard_equivalence.rs), so
    // every workload cell — events, instances, completion, validator
    // peaks, violations — must be byte-identical across the jobs × shards
    // × threads grid. Only the wall-clock throughput/speedup cells and
    // the configuration/diagnostic columns (which describe the engine
    // setup itself) are exempt.
    const EXEMPT: &[&str] = &[
        "seq ev/s",
        "fused ev/s",
        "thr ev/s",
        "thr/fused",
        "shards",
        "threads",
        "peak shard q",
        "barrier slack",
    ];
    let render = |jobs: usize, shards: usize, threads: usize| {
        let runner = TrialRunner::new(4, jobs)
            .with_shards(shards)
            .with_shard_threads(threads);
        strip_columns(&experiments::scale::run(&[200, 600], &runner).table, EXEMPT)
    };
    let reference = render(1, 0, 0);
    for jobs in [1usize, 8] {
        for (shards, threads) in [(0usize, 0usize), (1, 2), (4, 0), (4, 4), (7, 3)] {
            assert_eq!(
                reference,
                render(jobs, shards, threads),
                "SCALE: jobs={jobs} shards={shards} threads={threads} must agree with \
                 the sequential run on every workload cell"
            );
        }
    }
}

/// Runs an experiment's canonical execution with metrics enabled (and,
/// when `trace` is set, a chrome-trace export written to that path).
fn canonical_obs(
    id: &str,
    shards: usize,
    shard_threads: usize,
    trace: Option<std::path::PathBuf>,
) -> amac_bench::CanonicalRun {
    let spec = experiments::find(id).expect("registry id");
    spec.canonical(&amac_bench::CanonicalOpts {
        smoke: true,
        shards,
        shard_threads,
        metrics: true,
        chrome_trace: trace,
        ..amac_bench::CanonicalOpts::default()
    })
}

#[test]
fn metrics_payloads_are_shards_invariant() {
    // Canonical executions are single runs — the jobs knob never applies
    // to them, so the observability grid collapses to the shard axis.
    // tests/shard_equivalence.rs pins trace-level equality; this pins the
    // *rendered* METRICS document. deterministic_payload strips the
    // clearly-labelled "nondeterministic" member (wall-clock shard
    // profiling); everything else must be byte-identical, per the
    // acceptance criterion on `repro scale --shards 4 --metrics`.
    for id in ["scale", "consensus_crash"] {
        let reference = amac_obs::deterministic_payload(
            &canonical_obs(id, 0, 0, None)
                .metrics
                .expect("metrics were requested")
                .to_json(id),
        );
        for shards in [1usize, 4] {
            let sharded = amac_obs::deterministic_payload(
                &canonical_obs(id, shards, 0, None)
                    .metrics
                    .expect("metrics were requested")
                    .to_json(id),
            );
            assert_eq!(
                reference, sharded,
                "{id}: shards={shards} must produce the sequential metrics payload"
            );
        }
    }
}

#[test]
fn metrics_payloads_are_shard_thread_invariant() {
    // The thread-per-shard drain adds the last determinism axis: the
    // rendered METRICS payload must survive the full threads x shards
    // grid. (Worker lanes land in the stripped "nondeterministic"
    // member, so wall-clock profiling never leaks into the comparison.)
    let reference = amac_obs::deterministic_payload(
        &canonical_obs("scale", 0, 0, None)
            .metrics
            .expect("metrics were requested")
            .to_json("scale"),
    );
    for shards in [1usize, 2, 4] {
        for threads in [1usize, 2, 4] {
            let threaded = amac_obs::deterministic_payload(
                &canonical_obs("scale", shards, threads, None)
                    .metrics
                    .expect("metrics were requested")
                    .to_json("scale"),
            );
            assert_eq!(
                reference, threaded,
                "scale: shards={shards} threads={threads} must produce the \
                 sequential metrics payload"
            );
        }
    }
}

#[test]
fn fault_free_metrics_respect_the_ack_bound() {
    // Every fault-free canonical run must deliver within F_ack: the
    // delivery-latency histogram's upper edge is bounded by the model's
    // ack deadline (consensus_crash injects crashes and is exempt).
    for id in ["fig1_gg", "fig1_fmmb", "scale"] {
        let metrics = canonical_obs(id, 0, 0, None)
            .metrics
            .expect("metrics were requested");
        assert!(metrics.bcasts > 0, "{id}: empty run");
        assert!(
            metrics.delivery_within_ack_bound(),
            "{id}: fault-free delivery latency exceeded F_ack"
        );
    }
}

/// Rewrites every `"tid":N` to `"tid":0` — the track id is the one field
/// that legitimately varies with `--shards` (it *is* the shard index).
fn strip_track_ids(doc: &str) -> String {
    let mut out = String::with_capacity(doc.len());
    let mut rest = doc;
    while let Some(at) = rest.find("\"tid\":") {
        let digits_at = at + "\"tid\":".len();
        out.push_str(&rest[..digits_at]);
        out.push('0');
        rest = rest[digits_at..].trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

#[test]
fn chrome_traces_are_shards_invariant_modulo_track_ids() {
    // The span timeline observes the identical execution at every shard
    // count, so the exported chrome trace must be byte-identical except
    // for `tid`, which deliberately encodes the shard lane.
    let dir = std::env::temp_dir().join("amac-bench-determinism-spans");
    std::fs::create_dir_all(&dir).unwrap();
    let render = |shards: usize| {
        let path = dir.join(format!("trace-{shards}.json"));
        canonical_obs("scale", shards, 0, Some(path.clone()));
        let doc = std::fs::read_to_string(&path).expect("chrome trace written");
        std::fs::remove_file(&path).ok();
        doc
    };
    let sequential = render(0);
    assert!(sequential.starts_with("{\"traceEvents\":["));
    assert!(sequential.contains("\"ph\":\"X\""), "spans present");
    let reference = strip_track_ids(&sequential);
    for shards in [1usize, 4] {
        let sharded = render(shards);
        assert_eq!(
            reference,
            strip_track_ids(&sharded),
            "SCALE: shards={shards} chrome trace must match modulo track ids"
        );
        if shards > 1 {
            assert_ne!(
                sequential, sharded,
                "sharded spans must actually ride shard lanes"
            );
        }
    }
}

#[test]
fn single_trial_reproduces_historical_seed_behaviour() {
    // Trial 0 is seeded with the experiment's historical base seed, so a
    // single-trial engine run must agree with itself across repeats and
    // across job counts (there is nothing to parallelize, but the code
    // path must not disturb the rng flow).
    let a = experiments::fig1_fmmb::run_smoke_with(&TrialRunner::single());
    let b = experiments::fig1_fmmb::run_smoke_with(&TrialRunner::new(1, 8));
    assert_eq!(a.table.to_string(), b.table.to_string());
}
