//! Bounded deterministic time series.
//!
//! A run can record millions of samples, but a metrics document wants a
//! sketch. [`TimeSeries`] keeps at most a fixed number of `(tick, value)`
//! points by sampling on a tick stride that doubles whenever the buffer
//! fills, keeping the **maximum** value seen within each stride bucket.
//! The decimation schedule depends only on the sample sequence, so two
//! identical executions produce byte-identical series — no wall clock,
//! no allocation-order sensitivity.

/// A bounded `(tick, value)` series tracking the per-bucket maximum, plus
/// the exact global peak.
///
/// # Examples
///
/// ```
/// use amac_obs::TimeSeries;
///
/// let mut s = TimeSeries::new(4);
/// for t in 0..100u64 {
///     s.record(t, t % 7);
/// }
/// assert!(s.points().len() <= 4);
/// assert_eq!(s.peak(), 6);
/// ```
#[derive(Clone, Debug)]
pub struct TimeSeries {
    capacity: usize,
    /// Current bucket width in ticks (doubles on overflow).
    stride: u64,
    /// Completed `(bucket start tick, bucket max)` points.
    points: Vec<(u64, u64)>,
    /// The bucket currently being filled, if any.
    open: Option<(u64, u64)>,
    peak: u64,
}

impl TimeSeries {
    /// Creates a series keeping at most `capacity ≥ 2` points.
    pub fn new(capacity: usize) -> TimeSeries {
        TimeSeries {
            capacity: capacity.max(2),
            stride: 1,
            points: Vec::new(),
            open: None,
            peak: 0,
        }
    }

    /// Start tick of the stride bucket holding `tick`.
    fn bucket(&self, tick: u64) -> u64 {
        tick - tick % self.stride
    }

    /// Records `value` at `tick`. Ticks must be non-decreasing (event
    /// order); a violating tick is clamped into the open bucket.
    pub fn record(&mut self, tick: u64, value: u64) {
        self.peak = self.peak.max(value);
        let bucket = self.bucket(tick);
        match &mut self.open {
            Some((start, max)) if bucket <= *start => *max = (*max).max(value),
            _ => {
                if let Some(done) = self.open.take() {
                    self.points.push(done);
                }
                // Doubling terminates: once the stride exceeds the tick
                // span every kept point lands in bucket 0 and merges.
                while self.points.len() >= self.capacity {
                    self.halve();
                }
                // Re-bucket under the (possibly doubled) stride.
                self.open = Some((self.bucket(tick), value));
            }
        }
    }

    /// Doubles the stride and re-buckets the kept points, merging
    /// neighbours that now share a bucket (max-within-bucket).
    fn halve(&mut self) {
        self.stride *= 2;
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.points.len() / 2 + 1);
        for &(tick, value) in &self.points {
            let bucket = tick - tick % self.stride;
            match merged.last_mut() {
                Some((start, max)) if *start == bucket => *max = (*max).max(value),
                _ => merged.push((bucket, value)),
            }
        }
        self.points = merged;
    }

    /// The kept `(bucket start tick, bucket max value)` points in tick
    /// order, the open bucket included.
    pub fn points(&self) -> Vec<(u64, u64)> {
        let mut out = self.points.clone();
        if let Some((start, max)) = self.open {
            // A stride doubling can re-bucket the open point onto the last
            // completed one; fold them so starts stay strictly increasing.
            match out.last_mut() {
                Some((last, lmax)) if *last >= start => *lmax = (*lmax).max(max),
                _ => out.push((start, max)),
            }
        }
        out
    }

    /// The exact maximum value ever recorded (not subject to decimation).
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Renders `{"peak":..,"stride":..,"points":[[t,v],..]}`.
    pub fn to_json(&self) -> String {
        let mut body = String::new();
        for (t, v) in self.points() {
            if !body.is_empty() {
                body.push(',');
            }
            body.push_str(&format!("[{t},{v}]"));
        }
        format!(
            "{{\"peak\":{},\"stride\":{},\"points\":[{body}]}}",
            self.peak, self.stride
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_every_point_while_under_capacity() {
        let mut s = TimeSeries::new(8);
        s.record(0, 1);
        s.record(1, 5);
        s.record(2, 3);
        assert_eq!(s.points(), vec![(0, 1), (1, 5), (2, 3)]);
        assert_eq!(s.peak(), 5);
    }

    #[test]
    fn stays_bounded_and_keeps_bucket_maxima() {
        let mut s = TimeSeries::new(4);
        for t in 0..1000u64 {
            s.record(t, if t == 777 { 99 } else { 1 });
        }
        let pts = s.points();
        assert!(pts.len() <= 4, "kept {} points", pts.len());
        assert_eq!(s.peak(), 99, "peak survives decimation exactly");
        assert!(
            pts.iter().any(|&(_, v)| v == 99),
            "the spike's bucket keeps its max"
        );
        for pair in pts.windows(2) {
            assert!(pair[0].0 < pair[1].0, "points stay in tick order");
        }
    }

    #[test]
    fn same_input_same_series() {
        let run = || {
            let mut s = TimeSeries::new(8);
            for t in 0..500u64 {
                s.record(t / 3, t % 11);
            }
            s.to_json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn json_shape() {
        let mut s = TimeSeries::new(4);
        s.record(0, 2);
        s.record(5, 7);
        assert_eq!(
            s.to_json(),
            "{\"peak\":7,\"stride\":1,\"points\":[[0,2],[5,7]]}"
        );
    }
}
