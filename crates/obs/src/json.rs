//! Minimal JSON string escaping (the workspace builds offline with no
//! serde; every JSON surface is hand-rendered against fixed schemas).

/// Escapes `s` for embedding in a JSON string literal: quotes,
/// backslashes, the common control escapes, and `\u00XX` for the rest of
/// the C0 range.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_controls_and_passes_text() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\n\t\r"), "x\\n\\t\\r");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
