//! Fixed-bucket power-of-two histograms (HDR-style, one-significant-bit
//! resolution).
//!
//! Latencies in this workspace are small integers of simulated ticks, and
//! the determinism contract forbids anything allocation- or order-
//! sensitive on the output path — so the histogram is a fixed array of 65
//! buckets: bucket 0 holds the value 0 and bucket `i ≥ 1` holds the range
//! `[2^(i-1), 2^i - 1]`. Recording is O(1) (a leading-zeros count),
//! merging is elementwise addition, and the rendered JSON lists only the
//! non-empty buckets, so the encoding is compact at any magnitude.

use std::fmt;

/// Number of buckets: the zero bucket plus one per bit of a `u64`.
const BUCKETS: usize = 65;

/// A power-of-two bucket histogram of `u64` samples with exact count,
/// sum, min, and max.
///
/// # Examples
///
/// ```
/// use amac_obs::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [0, 1, 2, 3, 9] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.max(), Some(9));
/// assert_eq!(h.bucket_count(2), 2, "2 and 3 share the [2,3] bucket");
/// ```
#[derive(Clone)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Index of the bucket holding `value`: 0 for 0, else
    /// `64 - leading_zeros(value)`.
    fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Inclusive `(low, high)` range of bucket `index`.
    fn bucket_range(index: usize) -> (u64, u64) {
        if index == 0 {
            (0, 0)
        } else {
            let low = 1u64 << (index - 1);
            (low, low + (low - 1))
        }
    }

    /// Records one sample. The sum saturates instead of overflowing.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Samples in the bucket containing `value`.
    pub fn bucket_count(&self, value: u64) -> u64 {
        self.counts[Self::bucket_of(value)]
    }

    /// Non-empty buckets as `(low, high, count)` triples, ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts.iter().enumerate().filter_map(|(i, &c)| {
            if c == 0 {
                return None;
            }
            let (low, high) = Self::bucket_range(i);
            Some((low, high, c))
        })
    }

    /// Renders the histogram as a deterministic JSON object:
    /// `{"count":..,"sum":..,"min":..,"max":..,"buckets":[[lo,hi,n],..]}`
    /// (`min`/`max` are `null` when empty; only non-empty buckets appear).
    pub fn to_json(&self) -> String {
        let mut buckets = String::new();
        for (low, high, c) in self.buckets() {
            if !buckets.is_empty() {
                buckets.push(',');
            }
            buckets.push_str(&format!("[{low},{high},{c}]"));
        }
        let bound =
            |present: Option<u64>| present.map_or_else(|| "null".to_owned(), |v| v.to_string());
        format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{buckets}]}}",
            self.count,
            self.sum,
            bound(self.min()),
            bound(self.max()),
        )
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("max", &self.max())
            .field("sum", &self.sum)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two_with_zero_bucket() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_range(0), (0, 0));
        assert_eq!(Histogram::bucket_range(1), (1, 1));
        assert_eq!(Histogram::bucket_range(3), (4, 7));
        assert_eq!(Histogram::bucket_range(64), (1 << 63, u64::MAX));
    }

    #[test]
    fn records_and_summarises() {
        let mut h = Histogram::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        for v in [5, 0, 17, 5] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 27);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(17));
        assert_eq!(h.bucket_count(5), 2, "4..=7 bucket holds both fives");
        let triples: Vec<_> = h.buckets().collect();
        assert_eq!(triples, vec![(0, 0, 1), (4, 7, 2), (16, 31, 1)]);
    }

    #[test]
    fn json_is_compact_and_stable() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(6);
        assert_eq!(
            h.to_json(),
            "{\"count\":2,\"sum\":6,\"min\":0,\"max\":6,\"buckets\":[[0,0,1],[4,7,1]]}"
        );
        assert_eq!(
            Histogram::new().to_json(),
            "{\"count\":0,\"sum\":0,\"min\":null,\"max\":null,\"buckets\":[]}"
        );
    }

    #[test]
    fn extreme_values_do_not_overflow_bucketing() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(1 << 63);
        assert_eq!(h.bucket_count(u64::MAX), 2);
        assert_eq!(h.max(), Some(u64::MAX));
    }
}
