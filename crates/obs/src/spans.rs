//! Span timelines: every MAC bcast instance as a Chrome trace event.
//!
//! [`SpanObserver`] turns the event stream into instance spans — start at
//! the `bcast` tick, end at the terminal `ack`/`abort` (or the sender's
//! crash), with one instant per receiver delivery — and exports the
//! [Chrome trace-event JSON] that Perfetto and `chrome://tracing` load
//! directly. Simulated ticks are mapped 1:1 onto trace microseconds.
//!
//! Tracks (`tid`) are shard indices when a shard map is supplied
//! ([`SpanObserver::with_tracks`], built from the same contiguous
//! partition the sharded runtime uses), so a sharded run renders as one
//! lane per shard; without a map everything lands on track 0. The `tid`
//! is the **only** field that varies with `--shards` — the bench
//! determinism suite byte-compares exports across the jobs × shards grid
//! modulo that field.
//!
//! [Chrome trace-event JSON]:
//!     https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::json::escape;
use amac_graph::NodeId;
use amac_mac::trace::{TraceEntry, TraceKind};
use amac_mac::{FaultKind, Observer};
use amac_sim::Time;

/// How an instance's span ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Outcome {
    /// Still open when the export was produced.
    Open,
    /// Acknowledged to the sender.
    Acked,
    /// Aborted by the sender (enhanced model).
    Aborted,
    /// Silenced by the sender's crash.
    Crashed,
}

impl Outcome {
    fn label(self) -> &'static str {
        match self {
            Outcome::Open => "open",
            Outcome::Acked => "ack",
            Outcome::Aborted => "abort",
            Outcome::Crashed => "crash",
        }
    }
}

/// One instance span under construction, indexed by instance id.
#[derive(Clone, Debug)]
struct Span {
    start: u64,
    sender: u32,
    key: u64,
    end: Option<u64>,
    outcome: Outcome,
    /// Receiver deliveries as `(tick, node)` in delivery order.
    rcvs: Vec<(u64, u32)>,
}

/// Builds per-instance spans from the event stream and renders Chrome
/// trace-event JSON.
///
/// # Examples
///
/// ```
/// use amac_obs::SpanObserver;
///
/// let spans = SpanObserver::new();
/// let json = spans.to_chrome_json();
/// assert!(json.starts_with("{\"traceEvents\":["));
/// ```
#[derive(Debug, Default)]
pub struct SpanObserver {
    /// Node index → track id (shard), when sharding is in play.
    tracks: Option<Vec<u32>>,
    spans: Vec<Option<Span>>,
    end_ticks: u64,
}

impl SpanObserver {
    /// Creates an observer with every span on track 0.
    pub fn new() -> SpanObserver {
        SpanObserver::default()
    }

    /// Assigns each node a track (Perfetto lane): `tracks[node]` is the
    /// node's shard index. Spans take the sender's track, delivery
    /// instants the receiver's.
    pub fn with_tracks(mut self, tracks: Vec<u32>) -> SpanObserver {
        self.tracks = Some(tracks);
        self
    }

    fn track_of(&self, node: u32) -> u32 {
        self.tracks
            .as_ref()
            .and_then(|t| t.get(node as usize).copied())
            .unwrap_or(0)
    }

    fn span_mut(&mut self, index: usize) -> &mut Option<Span> {
        if self.spans.len() <= index {
            self.spans.resize(index + 1, None);
        }
        &mut self.spans[index]
    }

    /// Number of spans started so far.
    pub fn len(&self) -> usize {
        self.spans.iter().flatten().count()
    }

    /// `true` when no span has started.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the Chrome trace-event document: one `ph:"X"` complete
    /// event per instance span plus one `ph:"i"` instant per receiver
    /// delivery, in instance order (deterministic). Open spans extend to
    /// the last observed tick and are labelled `"outcome":"open"`.
    pub fn to_chrome_json(&self) -> String {
        let mut events: Vec<String> = Vec::new();
        for (index, span) in self.spans.iter().enumerate() {
            let Some(span) = span else { continue };
            let end = span.end.unwrap_or(self.end_ticks.max(span.start));
            let name = escape(&format!("i{index} k{}", span.key));
            events.push(format!(
                "{{\"name\":\"{name}\",\"cat\":\"mac\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":0,\"tid\":{},\"args\":{{\"instance\":{index},\"sender\":{},\
                 \"key\":{},\"rcvs\":{},\"outcome\":\"{}\"}}}}",
                span.start,
                end - span.start,
                self.track_of(span.sender),
                span.sender,
                span.key,
                span.rcvs.len(),
                span.outcome.label(),
            ));
            for &(tick, node) in &span.rcvs {
                events.push(format!(
                    "{{\"name\":\"rcv i{index}\",\"cat\":\"mac\",\"ph\":\"i\",\"ts\":{tick},\
                     \"pid\":0,\"tid\":{},\"s\":\"t\",\"args\":{{\"instance\":{index},\
                     \"node\":{node}}}}}",
                    self.track_of(node),
                ));
            }
        }
        format!(
            "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}\n",
            events.join(",\n")
        )
    }
}

impl Observer for SpanObserver {
    fn on_event(&mut self, event: &TraceEntry) {
        let ticks = event.time.ticks();
        self.end_ticks = self.end_ticks.max(ticks);
        let index = event.instance.index();
        match event.kind {
            TraceKind::Bcast => {
                *self.span_mut(index) = Some(Span {
                    start: ticks,
                    sender: event.node.index() as u32,
                    key: event.key.0,
                    end: None,
                    outcome: Outcome::Open,
                    rcvs: Vec::new(),
                });
            }
            TraceKind::Rcv => {
                if let Some(Some(span)) = self.spans.get_mut(index) {
                    span.rcvs.push((ticks, event.node.index() as u32));
                }
            }
            TraceKind::Ack | TraceKind::Abort => {
                if let Some(Some(span)) = self.spans.get_mut(index) {
                    if span.end.is_none() {
                        span.end = Some(ticks);
                        span.outcome = if event.kind == TraceKind::Ack {
                            Outcome::Acked
                        } else {
                            Outcome::Aborted
                        };
                    }
                }
            }
        }
    }

    fn on_fault(&mut self, time: Time, node: NodeId, kind: FaultKind) {
        self.end_ticks = self.end_ticks.max(time.ticks());
        if kind != FaultKind::Crash {
            return;
        }
        // Close the crashed sender's open span: the runtime silences its
        // in-flight instance, so no terminal event will arrive.
        let crashed = node.index() as u32;
        for span in self.spans.iter_mut().flatten() {
            if span.sender == crashed && span.end.is_none() {
                span.end = Some(time.ticks());
                span.outcome = Outcome::Crashed;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amac_mac::{InstanceId, MessageKey};

    fn entry(kind: TraceKind, ticks: u64, inst: u64, node: usize) -> TraceEntry {
        TraceEntry {
            time: Time::from_ticks(ticks),
            instance: InstanceId::new(inst),
            node: NodeId::new(node),
            kind,
            key: MessageKey(3),
        }
    }

    fn feed(spans: &mut SpanObserver) {
        spans.on_event(&entry(TraceKind::Bcast, 0, 0, 0));
        spans.on_event(&entry(TraceKind::Rcv, 2, 0, 1));
        spans.on_event(&entry(TraceKind::Ack, 3, 0, 0));
        spans.on_event(&entry(TraceKind::Bcast, 4, 1, 1));
    }

    #[test]
    fn spans_have_duration_receivers_and_outcomes() {
        let mut spans = SpanObserver::new();
        feed(&mut spans);
        assert_eq!(spans.len(), 2);
        let json = spans.to_chrome_json();
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":0,\"dur\":3"));
        assert!(json.contains("\"outcome\":\"ack\""));
        assert!(json.contains("\"outcome\":\"open\""), "i1 never terminated");
        assert!(json.contains("\"ph\":\"i\""), "delivery instant present");
        // Valid-enough JSON: brackets and braces balance.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn crash_closes_the_senders_open_span() {
        let mut spans = SpanObserver::new();
        spans.on_event(&entry(TraceKind::Bcast, 0, 0, 2));
        spans.on_fault(Time::from_ticks(5), NodeId::new(2), FaultKind::Crash);
        let json = spans.to_chrome_json();
        assert!(json.contains("\"outcome\":\"crash\""));
        assert!(json.contains("\"dur\":5"));
    }

    #[test]
    fn tracks_route_spans_to_shard_lanes() {
        let mut spans = SpanObserver::new().with_tracks(vec![0, 1]);
        feed(&mut spans);
        let json = spans.to_chrome_json();
        assert!(json.contains("\"tid\":1"), "sender 1 rides its shard lane");
        assert!(json.contains("\"tid\":0"));
    }

    #[test]
    fn export_is_deterministic() {
        let run = || {
            let mut spans = SpanObserver::new();
            feed(&mut spans);
            spans.to_chrome_json()
        };
        assert_eq!(run(), run());
    }
}
