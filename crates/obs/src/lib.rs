//! # amac-obs — deterministic metrics and tracing observers
//!
//! The paper's guarantees are quantitative — every delivery and every
//! acknowledgment is bounded by the `F_prog`/`F_ack` windows — yet a
//! pass/fail validator cannot show *where* the time goes inside an
//! execution. This crate adds the measurement surface, as two more
//! [`Observer`](amac_mac::Observer)s on the existing pipeline plus an
//! export path for the sharded runtime's wall-clock self-profile:
//!
//! * [`MetricsObserver`] — deterministic sim-time metrics: power-of-two
//!   bucket [`Histogram`]s of per-receiver delivery latency, ack latency,
//!   and progress-window slack relative to the `F_prog`/`F_ack` bounds,
//!   per-node counters, and an in-flight-instance depth [`TimeSeries`].
//!   The resulting [`MetricsReport`] renders to JSON whose deterministic
//!   payload is byte-identical across `--jobs` and `--shards`.
//! * [`SpanObserver`] — every MAC bcast instance becomes a span (start
//!   tick, per-receiver delivery instants, terminal ack/abort/crash),
//!   exported as Chrome trace-event JSON loadable in Perfetto or
//!   `chrome://tracing`, with the sender's shard as the track.
//! * The [`ShardProfile`](amac_sim::ShardProfile) wall-clock side channel
//!   measured by `amac-sim`'s sharded queue rides along in the metrics
//!   JSON under a clearly-labelled `"nondeterministic"` member, which
//!   [`deterministic_payload`] strips for byte-comparison.
//!
//! Metric definitions, the bucket scheme, and the determinism contract
//! are specified in `docs/OBSERVABILITY.md`.

pub mod hist;
pub mod metrics;
pub mod series;
pub mod spans;

mod json;

pub use hist::Histogram;
pub use metrics::{deterministic_payload, MetricsObserver, MetricsReport};
pub use series::TimeSeries;
pub use spans::SpanObserver;
