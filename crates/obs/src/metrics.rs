//! The deterministic metrics observer and its JSON report.
//!
//! [`MetricsObserver`] consumes the runtime's event stream (it sees
//! exactly what every other [`Observer`] sees — no
//! privileged runtime access) and aggregates:
//!
//! * **Delivery latency** — `rcv.time − bcast.time` per receiver. On
//!   fault-free runs the MAC layer acknowledges within `F_ack`, and every
//!   delivery precedes its ack, so this histogram's max is bounded by
//!   `F_ack` (asserted in the bench determinism suite).
//! * **Ack latency** — `ack.time − bcast.time` per instance.
//! * **Progress slack** — `(bcast.time + F_prog) − rcv.time`, clamped at
//!   zero: how much of the progress window a delivery left unused.
//!   Deliveries past the window are legal (progress is a *some-message*
//!   guarantee, not per-instance) and counted as `late_deliveries`.
//! * **Per-node counters** and an **in-flight instance depth** series —
//!   the observer-visible proxy for event-queue load: `Bcast` opens an
//!   instance; `Ack`/`Abort` close it; a sender crash silences it.
//!
//! Everything above is a pure function of the deterministic event stream,
//! so the rendered JSON payload is byte-identical across `--jobs` and
//! `--shards`. Wall-clock shard profiling rides in a separate, clearly
//! labelled `"nondeterministic"` member that [`deterministic_payload`]
//! strips.

use crate::hist::Histogram;
use crate::json::escape;
use crate::series::TimeSeries;
use amac_graph::NodeId;
use amac_mac::trace::{TraceEntry, TraceKind};
use amac_mac::{FaultKind, InstanceId, MacConfig, Observer};
use amac_sim::{ShardProfile, ShardStats, Time};

/// Points kept in the in-flight depth series.
const SERIES_POINTS: usize = 128;

/// Per-node event counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeCounters {
    /// Broadcasts initiated by the node.
    pub bcast: u64,
    /// Messages delivered to the node.
    pub rcv: u64,
    /// Acknowledgments received by the node (as sender).
    pub ack: u64,
    /// Aborts issued by the node.
    pub abort: u64,
}

/// One open or closed instance, tracked by instance index.
#[derive(Clone, Copy, Debug)]
struct InstanceState {
    start: u64,
    sender: u32,
    open: bool,
}

/// Streaming deterministic metrics over the MAC event stream; see the
/// module docs for the metric definitions.
///
/// # Examples
///
/// ```
/// use amac_mac::{MacConfig, Observer};
/// use amac_obs::MetricsObserver;
///
/// let mut metrics = MetricsObserver::new(MacConfig::from_ticks(2, 16));
/// // ... attach to a Runtime, or feed TraceEntry values by hand ...
/// let report = metrics.into_report();
/// assert_eq!(report.events_total(), 0);
/// ```
#[derive(Debug)]
pub struct MetricsObserver {
    f_prog: u64,
    f_ack: u64,
    delivery: Histogram,
    ack: Histogram,
    slack: Histogram,
    per_node: Vec<NodeCounters>,
    instances: Vec<Option<InstanceState>>,
    /// Open instance of each sender, for crash-time closure (a node has
    /// at most one in-flight instance).
    open_by_sender: Vec<Option<InstanceId>>,
    late_deliveries: u64,
    faults: u64,
    in_flight: u64,
    depth: TimeSeries,
    end_ticks: u64,
}

impl MetricsObserver {
    /// Creates an observer measuring against `config`'s bounds.
    pub fn new(config: MacConfig) -> MetricsObserver {
        MetricsObserver::from_ticks(config.f_prog().ticks(), config.f_ack().ticks())
    }

    /// Creates an observer from raw bounds in ticks — the replay path,
    /// where only the stored trace header is available.
    pub fn from_ticks(f_prog: u64, f_ack: u64) -> MetricsObserver {
        MetricsObserver {
            f_prog,
            f_ack,
            delivery: Histogram::new(),
            ack: Histogram::new(),
            slack: Histogram::new(),
            per_node: Vec::new(),
            instances: Vec::new(),
            open_by_sender: Vec::new(),
            late_deliveries: 0,
            faults: 0,
            in_flight: 0,
            depth: TimeSeries::new(SERIES_POINTS),
            end_ticks: 0,
        }
    }

    fn node_mut(&mut self, node: NodeId) -> &mut NodeCounters {
        if self.per_node.len() <= node.index() {
            self.per_node
                .resize(node.index() + 1, NodeCounters::default());
        }
        &mut self.per_node[node.index()]
    }

    fn instance_mut(&mut self, id: InstanceId) -> &mut Option<InstanceState> {
        if self.instances.len() <= id.index() {
            self.instances.resize(id.index() + 1, None);
        }
        &mut self.instances[id.index()]
    }

    fn close(&mut self, id: InstanceId, ticks: u64) {
        let Some(Some(state)) = self.instances.get_mut(id.index()) else {
            return;
        };
        if !state.open {
            return;
        }
        state.open = false;
        let sender = state.sender as usize;
        if let Some(slot) = self.open_by_sender.get_mut(sender) {
            *slot = None;
        }
        self.in_flight = self.in_flight.saturating_sub(1);
        self.depth.record(ticks, self.in_flight);
    }

    /// Consumes the observer, producing the final [`MetricsReport`] (with
    /// no nondeterministic side channel attached; harnesses add one via
    /// [`MetricsReport::with_shard_diagnostics`]).
    pub fn into_report(self) -> MetricsReport {
        let mut events = [0u64; 4];
        for c in &self.per_node {
            events[0] += c.bcast;
            events[1] += c.rcv;
            events[2] += c.ack;
            events[3] += c.abort;
        }
        MetricsReport {
            f_prog: self.f_prog,
            f_ack: self.f_ack,
            bcasts: events[0],
            rcvs: events[1],
            acks: events[2],
            aborts: events[3],
            faults: self.faults,
            late_deliveries: self.late_deliveries,
            end_ticks: self.end_ticks,
            delivery_latency: self.delivery,
            ack_latency: self.ack,
            progress_slack: self.slack,
            per_node: self.per_node,
            in_flight: self.depth,
            shard_stats: None,
            profile: None,
        }
    }
}

impl Observer for MetricsObserver {
    fn on_event(&mut self, event: &TraceEntry) {
        let ticks = event.time.ticks();
        self.end_ticks = self.end_ticks.max(ticks);
        match event.kind {
            TraceKind::Bcast => {
                self.node_mut(event.node).bcast += 1;
                let sender = event.node.index();
                *self.instance_mut(event.instance) = Some(InstanceState {
                    start: ticks,
                    sender: sender as u32,
                    open: true,
                });
                if self.open_by_sender.len() <= sender {
                    self.open_by_sender.resize(sender + 1, None);
                }
                self.open_by_sender[sender] = Some(event.instance);
                self.in_flight += 1;
                self.depth.record(ticks, self.in_flight);
            }
            TraceKind::Rcv => {
                self.node_mut(event.node).rcv += 1;
                let state = self
                    .instances
                    .get(event.instance.index())
                    .copied()
                    .flatten();
                if let Some(state) = state {
                    self.delivery.record(ticks - state.start);
                    let deadline = state.start + self.f_prog;
                    self.slack.record(deadline.saturating_sub(ticks));
                    if ticks > deadline {
                        self.late_deliveries += 1;
                    }
                }
            }
            TraceKind::Ack => {
                self.node_mut(event.node).ack += 1;
                let state = self
                    .instances
                    .get(event.instance.index())
                    .copied()
                    .flatten();
                if let Some(state) = state {
                    self.ack.record(ticks - state.start);
                }
                self.close(event.instance, ticks);
            }
            TraceKind::Abort => {
                self.node_mut(event.node).abort += 1;
                self.close(event.instance, ticks);
            }
        }
    }

    fn on_fault(&mut self, time: Time, node: NodeId, kind: FaultKind) {
        self.faults += 1;
        self.end_ticks = self.end_ticks.max(time.ticks());
        if kind == FaultKind::Crash {
            // A crash silences the node's in-flight instance: no further
            // events for it will arrive, so close it here (mirroring the
            // runtime's `Terminated::Crashed`).
            if let Some(Some(id)) = self.open_by_sender.get(node.index()).copied() {
                self.close(id, time.ticks());
            }
        }
    }
}

/// The finished metrics of one execution, renderable as deterministic
/// JSON (see `docs/OBSERVABILITY.md` for the schema).
#[derive(Clone, Debug)]
pub struct MetricsReport {
    /// Progress bound `F_prog`, in ticks.
    pub f_prog: u64,
    /// Acknowledgment bound `F_ack`, in ticks.
    pub f_ack: u64,
    /// Total broadcast events.
    pub bcasts: u64,
    /// Total delivery events.
    pub rcvs: u64,
    /// Total acknowledgment events.
    pub acks: u64,
    /// Total abort events.
    pub aborts: u64,
    /// Applied node faults (crashes plus recoveries).
    pub faults: u64,
    /// Deliveries later than `bcast + F_prog` (legal; see module docs).
    pub late_deliveries: u64,
    /// Tick of the last observed event.
    pub end_ticks: u64,
    /// Per-receiver delivery latency, in ticks.
    pub delivery_latency: Histogram,
    /// Per-instance acknowledgment latency, in ticks.
    pub ack_latency: Histogram,
    /// Unused progress-window ticks per delivery (clamped at zero).
    pub progress_slack: Histogram,
    /// Per-node counters, indexed by node.
    pub per_node: Vec<NodeCounters>,
    /// In-flight instance depth over simulated time.
    pub in_flight: TimeSeries,
    /// Sharded-queue synchronization stats (varies with `--shards`;
    /// rendered inside the `"nondeterministic"` member).
    pub shard_stats: Option<ShardStats>,
    /// Wall-clock shard self-profile (nondeterministic side channel).
    pub profile: Option<ShardProfile>,
}

impl MetricsReport {
    /// Attaches the sharded runtime's diagnostics: deterministic-but-
    /// shard-count-dependent [`ShardStats`] and the wall-clock
    /// [`ShardProfile`]. Both render under the `"nondeterministic"` JSON
    /// member so the deterministic payload stays byte-comparable.
    pub fn with_shard_diagnostics(
        mut self,
        stats: Option<ShardStats>,
        profile: Option<ShardProfile>,
    ) -> MetricsReport {
        self.shard_stats = stats;
        self.profile = profile;
        self
    }

    /// Total MAC-level events.
    pub fn events_total(&self) -> u64 {
        self.bcasts + self.rcvs + self.acks + self.aborts
    }

    /// `true` when every recorded delivery latency is within the `F_ack`
    /// bound — guaranteed by the model on fault-free runs (each delivery
    /// precedes its instance's ack, which `F_ack` bounds).
    pub fn delivery_within_ack_bound(&self) -> bool {
        self.delivery_latency
            .max()
            .map_or(true, |m| m <= self.f_ack)
    }

    fn per_node_json(&self) -> String {
        let mut summary = [(u64::MAX, 0u64, 0u64); 4]; // (min, max, total) per kind
        for c in &self.per_node {
            for (slot, v) in [c.bcast, c.rcv, c.ack, c.abort].into_iter().enumerate() {
                summary[slot].0 = summary[slot].0.min(v);
                summary[slot].1 = summary[slot].1.max(v);
                summary[slot].2 += v;
            }
        }
        let field = |name: &str, (min, max, total): (u64, u64, u64)| {
            let min = if self.per_node.is_empty() { 0 } else { min };
            format!("\"{name}\":{{\"min\":{min},\"max\":{max},\"total\":{total}}}")
        };
        let mut out = format!(
            "{{\"nodes\":{},{},{},{},{}",
            self.per_node.len(),
            field("bcast", summary[0]),
            field("rcv", summary[1]),
            field("ack", summary[2]),
            field("abort", summary[3]),
        );
        // The full per-node table only at small n: a 10⁵-node sweep does
        // not want a 10⁵-row JSON array.
        if self.per_node.len() <= 32 {
            out.push_str(",\"counts\":[");
            for (i, c) in self.per_node.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{},{},{},{}]", c.bcast, c.rcv, c.ack, c.abort));
            }
            out.push(']');
        }
        out.push('}');
        out
    }

    fn nondeterministic_json(&self) -> Option<String> {
        if self.shard_stats.is_none() && self.profile.is_none() {
            return None;
        }
        let mut members = Vec::new();
        if let Some(s) = &self.shard_stats {
            let list = |v: &[u64]| v.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
            let peaks = s
                .peak_pending
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(",");
            members.push(format!(
                "\"shard_stats\":{{\"shards\":{},\"window_ticks\":{},\"barriers\":{},\
                 \"outboxed\":{},\"lookahead_misses\":{},\"peak_pending\":[{peaks}],\
                 \"barrier_slack_ticks\":[{}]}}",
                s.shards,
                s.window_ticks,
                s.barriers,
                s.outboxed,
                s.lookahead_misses,
                list(&s.barrier_slack_ticks),
            ));
        }
        if let Some(p) = &self.profile {
            let busy = p
                .busy_nanos
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(",");
            let samples = p
                .samples
                .iter()
                .map(|s| {
                    format!(
                        "[{},{},{},{}]",
                        s.at_ticks, s.barriers, s.pending, s.outboxed
                    )
                })
                .collect::<Vec<_>>()
                .join(",");
            let workers = p
                .workers
                .iter()
                .map(|w| {
                    format!(
                        "{{\"busy_nanos\":{},\"barrier_wait_nanos\":{},\"idle_nanos\":{}}}",
                        w.busy_nanos, w.barrier_wait_nanos, w.idle_nanos
                    )
                })
                .collect::<Vec<_>>()
                .join(",");
            members.push(format!(
                "\"profile\":{{\"drain_nanos\":{},\"barrier_nanos\":{},\"merge_nanos\":{},\
                 \"busy_nanos\":[{busy}],\"workers\":[{workers}],\"samples\":[{samples}]}}",
                p.drain_nanos, p.barrier_nanos, p.merge_nanos,
            ));
        }
        Some(format!("{{\"wall_clock\":true,{}}}", members.join(",")))
    }

    /// Renders the full metrics document. Every member except the final
    /// optional `"nondeterministic"` one is a pure function of the
    /// deterministic event stream; [`deterministic_payload`] strips that
    /// member for byte-comparison across shard counts and machines.
    pub fn to_json(&self, experiment: &str) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        out.push_str("  \"schema\": \"amac-metrics-v1\",\n");
        out.push_str(&format!("  \"experiment\": \"{}\",\n", escape(experiment)));
        out.push_str(&format!("  \"f_prog\": {},\n", self.f_prog));
        out.push_str(&format!("  \"f_ack\": {},\n", self.f_ack));
        out.push_str(&format!("  \"end_tick\": {},\n", self.end_ticks));
        out.push_str(&format!(
            "  \"events\": {{\"bcast\":{},\"rcv\":{},\"ack\":{},\"abort\":{},\"faults\":{},\"late_deliveries\":{}}},\n",
            self.bcasts, self.rcvs, self.acks, self.aborts, self.faults, self.late_deliveries,
        ));
        out.push_str(&format!(
            "  \"delivery_latency\": {},\n",
            self.delivery_latency.to_json()
        ));
        out.push_str(&format!(
            "  \"ack_latency\": {},\n",
            self.ack_latency.to_json()
        ));
        out.push_str(&format!(
            "  \"progress_slack\": {},\n",
            self.progress_slack.to_json()
        ));
        out.push_str(&format!("  \"per_node\": {},\n", self.per_node_json()));
        out.push_str(&format!("  \"in_flight\": {}", self.in_flight.to_json()));
        if let Some(nondet) = self.nondeterministic_json() {
            out.push_str(&format!(",\n  {NONDET_KEY}: {nondet}"));
        }
        out.push_str("\n}\n");
        out
    }
}

/// The JSON key of the nondeterministic member, quoted as it appears in
/// the document.
const NONDET_KEY: &str = "\"nondeterministic\"";

/// Strips the optional trailing `"nondeterministic"` member from a
/// metrics JSON document, returning the byte-comparable deterministic
/// payload. Identity for documents without the member. The member is
/// always rendered last by [`MetricsReport::to_json`], so a simple
/// truncation is exact.
pub fn deterministic_payload(json: &str) -> String {
    match json.find(&format!(",\n  {NONDET_KEY}: ")) {
        Some(idx) => format!("{}\n}}\n", &json[..idx]),
        None => json.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amac_mac::MessageKey;

    fn entry(kind: TraceKind, ticks: u64, inst: u64, node: usize) -> TraceEntry {
        TraceEntry {
            time: Time::from_ticks(ticks),
            instance: InstanceId::new(inst),
            node: NodeId::new(node),
            kind,
            key: MessageKey(7),
        }
    }

    fn observe(events: &[TraceEntry]) -> MetricsReport {
        let mut m = MetricsObserver::from_ticks(2, 8);
        for e in events {
            m.on_event(e);
        }
        m.into_report()
    }

    #[test]
    fn latencies_are_measured_from_instance_start() {
        let report = observe(&[
            entry(TraceKind::Bcast, 10, 0, 0),
            entry(TraceKind::Rcv, 11, 0, 1),
            entry(TraceKind::Rcv, 14, 0, 2),
            entry(TraceKind::Ack, 15, 0, 0),
        ]);
        assert_eq!(report.delivery_latency.count(), 2);
        assert_eq!(report.delivery_latency.max(), Some(4));
        assert_eq!(report.ack_latency.max(), Some(5));
        // Slack: deadline 12; rcv@11 leaves 1, rcv@14 is 2 late (slack 0).
        assert_eq!(report.progress_slack.max(), Some(1));
        assert_eq!(report.late_deliveries, 1);
        assert!(report.delivery_within_ack_bound());
        assert_eq!(report.events_total(), 4);
        assert_eq!(report.per_node[0].bcast, 1);
        assert_eq!(report.per_node[2].rcv, 1);
    }

    #[test]
    fn depth_tracks_open_instances_and_crash_closes() {
        let mut m = MetricsObserver::from_ticks(2, 8);
        m.on_event(&entry(TraceKind::Bcast, 0, 0, 0));
        m.on_event(&entry(TraceKind::Bcast, 1, 1, 1));
        m.on_fault(Time::from_ticks(2), NodeId::new(1), FaultKind::Crash);
        m.on_event(&entry(TraceKind::Ack, 3, 0, 0));
        // A late ack for the crashed instance must not double-close.
        m.on_event(&entry(TraceKind::Ack, 4, 1, 1));
        let report = m.into_report();
        assert_eq!(report.in_flight.peak(), 2);
        assert_eq!(report.faults, 1);
        let last = *report.in_flight.points().last().unwrap();
        assert_eq!(last.1, 0, "all instances closed by the end");
    }

    #[test]
    fn json_separates_deterministic_and_nondeterministic() {
        let report = observe(&[
            entry(TraceKind::Bcast, 0, 0, 0),
            entry(TraceKind::Rcv, 1, 0, 1),
            entry(TraceKind::Ack, 1, 0, 0),
        ]);
        let plain = report.clone().to_json("unit");
        assert!(!plain.contains("nondeterministic"));
        assert_eq!(
            deterministic_payload(&plain),
            plain,
            "identity without member"
        );

        let sharded = report
            .with_shard_diagnostics(
                Some(ShardStats {
                    shards: 2,
                    window_ticks: 2,
                    barriers: 1,
                    outboxed: 3,
                    lookahead_misses: 0,
                    peak_pending: vec![4, 5],
                    barrier_slack_ticks: vec![1, 0],
                }),
                Some(ShardProfile {
                    drain_nanos: 123,
                    barrier_nanos: 45,
                    merge_nanos: 6,
                    busy_nanos: vec![100, 23],
                    workers: vec![amac_sim::WorkerLane {
                        busy_nanos: 90,
                        barrier_wait_nanos: 7,
                        idle_nanos: 3,
                    }],
                    samples: Vec::new(),
                }),
            )
            .to_json("unit");
        assert!(sharded.contains("\"nondeterministic\""));
        assert!(sharded.contains("\"wall_clock\":true"));
        assert!(sharded.contains("\"drain_nanos\":123"));
        assert!(sharded.contains("\"barrier_wait_nanos\":7"));
        assert_eq!(
            deterministic_payload(&sharded),
            plain,
            "stripping the member recovers the deterministic payload"
        );
    }

    #[test]
    fn json_braces_balance() {
        let mut m = MetricsObserver::from_ticks(2, 8);
        for i in 0..40u64 {
            m.on_event(&entry(TraceKind::Bcast, i, i, (i % 5) as usize));
            m.on_event(&entry(TraceKind::Rcv, i + 1, i, ((i + 1) % 5) as usize));
            m.on_event(&entry(TraceKind::Ack, i + 2, i, (i % 5) as usize));
        }
        let json = m
            .into_report()
            .with_shard_diagnostics(Some(ShardStats::default()), None)
            .to_json("balance \"quoted\" id");
        let depth_ok = |open: char, close: char| {
            let opens = json.matches(open).count();
            let closes = json.matches(close).count();
            opens == closes
        };
        assert!(depth_ok('{', '}'));
        assert!(depth_ok('[', ']'));
        assert!(json.contains("balance \\\"quoted\\\" id"));
    }
}
