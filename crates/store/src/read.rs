//! The read side: an out-of-core record iterator over a stored trace,
//! plus replay drivers that feed any [`Observer`] — in particular the
//! streaming [`OnlineValidator`] — the exact event/fault sequence of the
//! recorded execution.

use crate::error::StoreError;
use crate::format::Digest;
use crate::format::{
    decode_topology, read_varint, TraceHeader, END_TAG, HEADER_LEN, MAX_VARINT_LEN,
};
use amac_graph::{DualGraph, NodeId};
use amac_mac::trace::TraceKind;
use amac_mac::trace::{FaultRecord, TraceEntry};
use amac_mac::{
    FaultKind, InstanceId, MacConfig, MessageKey, Observer, OnlineStats, OnlineValidator,
    ValidationReport,
};
use amac_sim::Time;
use std::fmt;
use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;

/// One re-materialized record of a stored trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoredRecord {
    /// A MAC-level event.
    Event(TraceEntry),
    /// An applied node fault.
    Fault(FaultRecord),
}

/// The End record's payload: what the writer sealed into the file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Trailer {
    /// Whether the recorded run ended by draining its event queue
    /// (`RunOutcome::Idle`) — the flag replayed validators pass to
    /// [`OnlineValidator::into_report`].
    pub quiescent: bool,
    /// Event records in the file.
    pub events: u64,
    /// Fault records in the file.
    pub faults: u64,
}

/// Streaming reader of a stored trace: parses the header and topology
/// eagerly, then yields records one at a time — out-of-core, O(1) memory
/// in the execution length.
///
/// [`next_record`](TraceReader::next_record) returns `Ok(None)` only
/// after a verified End record (counts and stream digest checked);
/// anything else — truncation, a bad tag, a digest mismatch — is a
/// [`StoreError`]. After the end, [`trailer`](TraceReader::trailer)
/// exposes the sealed flags.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    input: R,
    header: TraceHeader,
    dual: DualGraph,
    digest: Digest,
    last_ticks: u64,
    events_seen: u64,
    faults_seen: u64,
    trailer: Option<Trailer>,
    /// Byte offset into the file of the next unread byte.
    offset: u64,
    /// Reused record-body scratch buffer.
    scratch: Vec<u8>,
}

impl TraceReader<BufReader<File>> {
    /// Opens the trace file at `path` and parses its header and topology.
    ///
    /// # Errors
    ///
    /// Fails on IO errors and on a malformed header/topology section.
    pub fn open(path: &Path) -> Result<TraceReader<BufReader<File>>, StoreError> {
        TraceReader::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read> TraceReader<R> {
    /// Wraps any byte source, parsing the header and topology section.
    ///
    /// # Errors
    ///
    /// Fails on IO errors and on a malformed header/topology section.
    pub fn new(mut input: R) -> Result<TraceReader<R>, StoreError> {
        let mut header_bytes = [0u8; HEADER_LEN];
        read_exact_at(&mut input, &mut header_bytes, 0)?;
        let header = TraceHeader::decode(&header_bytes)?;
        let mut offset = HEADER_LEN as u64;

        let topo_len = read_stream_varint(&mut input, &mut offset, "topology section length")?;
        // An absurd length is corruption, not an allocation request. The
        // cap is generous: 20 bytes per edge of a simple graph on n nodes.
        let n = header.nodes;
        let max_topo = 16 + 20 * n.saturating_mul(n.saturating_sub(1)) / 2;
        if topo_len > max_topo {
            return Err(StoreError::corrupt(
                offset,
                format!("topology section length {topo_len} exceeds plausible {max_topo}"),
            ));
        }
        let mut topology = vec![0u8; topo_len as usize];
        read_exact_at(&mut input, &mut topology, offset)?;
        let topo_offset = offset;
        offset += topo_len;
        let found = crate::format::fnv1a64(&topology);
        if found != header.topology_digest {
            return Err(StoreError::corrupt(
                topo_offset,
                format!(
                    "topology digest mismatch: header 0x{:016x}, section 0x{found:016x}",
                    header.topology_digest
                ),
            ));
        }
        let dual = decode_topology(&topology, header.nodes, topo_offset)?;

        Ok(TraceReader {
            input,
            header,
            dual,
            digest: Digest::new(),
            last_ticks: 0,
            events_seen: 0,
            faults_seen: 0,
            trailer: None,
            offset,
            scratch: Vec::with_capacity(32),
        })
    }

    /// The decoded file header.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// The dual graph reconstructed from the topology section.
    pub fn dual(&self) -> &DualGraph {
        &self.dual
    }

    /// The MAC configuration of the recorded execution.
    pub fn config(&self) -> MacConfig {
        self.header.config()
    }

    /// The End record's payload, available once
    /// [`next_record`](TraceReader::next_record) has returned `Ok(None)`.
    pub fn trailer(&self) -> Option<&Trailer> {
        self.trailer.as_ref()
    }

    /// Decodes the next record, or `Ok(None)` after a verified End
    /// record.
    ///
    /// # Errors
    ///
    /// Fails on IO errors and on any malformation of the stream:
    /// truncation (EOF before the End record), unknown tags, overlong
    /// varints, times running backwards, count or digest mismatches in
    /// the End record, and bytes after it.
    pub fn next_record(&mut self) -> Result<Option<StoredRecord>, StoreError> {
        if self.trailer.is_some() {
            return Ok(None);
        }
        let frame_start = self.offset;
        let digest_before = self.digest.value();
        let body_len = self.framed_varint("record length")?;
        if body_len == 0 || body_len > 4 * MAX_VARINT_LEN as u64 + 16 {
            return Err(StoreError::corrupt(
                frame_start,
                format!("implausible record length {body_len}"),
            ));
        }
        self.scratch.resize(body_len as usize, 0);
        let mut body = std::mem::take(&mut self.scratch);
        let res = read_exact_at(&mut self.input, &mut body, self.offset);
        self.scratch = body;
        res.map_err(|e| match e {
            // EOF inside a record is a truncated file, not a clean end.
            StoreError::Io(io) if io.kind() == std::io::ErrorKind::UnexpectedEof => {
                StoreError::corrupt(self.offset, "file truncated inside a record")
            }
            other => other,
        })?;
        self.digest.update(&self.scratch);
        let body_offset = self.offset;
        self.offset += body_len;

        let tag = self.scratch[0];
        if tag == END_TAG {
            // `digest_before` excludes the End record's own bytes: the
            // sealed digest covers everything before the End record.
            return self.read_end(body_offset, digest_before);
        }
        let mut pos = 1usize;
        let corrupt =
            |pos: usize, detail: String| StoreError::corrupt(body_offset + pos as u64, detail);
        let varint = |pos: &mut usize, what: &str| {
            read_varint(&self.scratch, pos)
                .ok_or_else(|| corrupt(*pos, format!("truncated {what} in record")))
        };
        let delta = varint(&mut pos, "time delta")?;
        let ticks = self.last_ticks.checked_add(delta).ok_or_else(|| {
            corrupt(
                1,
                format!("time overflows u64 (base {} + {delta})", self.last_ticks),
            )
        })?;
        let record = if let Some(kind) = TraceKind::from_code(tag) {
            let instance = varint(&mut pos, "instance id")?;
            let node = varint(&mut pos, "node id")?;
            let key = varint(&mut pos, "message key")?;
            if node >= self.header.nodes {
                return Err(corrupt(
                    pos,
                    format!("node {node} out of range (n={})", self.header.nodes),
                ));
            }
            self.events_seen += 1;
            StoredRecord::Event(TraceEntry {
                time: Time::from_ticks(ticks),
                instance: InstanceId::new(instance),
                node: NodeId::new(node as usize),
                kind,
                key: MessageKey(key),
            })
        } else if let Some(kind) = FaultKind::from_code(tag) {
            let node = varint(&mut pos, "node id")?;
            if node >= self.header.nodes {
                return Err(corrupt(
                    pos,
                    format!("node {node} out of range (n={})", self.header.nodes),
                ));
            }
            self.faults_seen += 1;
            StoredRecord::Fault(FaultRecord {
                time: Time::from_ticks(ticks),
                node: NodeId::new(node as usize),
                kind,
            })
        } else {
            return Err(corrupt(0, format!("unknown record tag 0x{tag:02x}")));
        };
        if pos != self.scratch.len() {
            return Err(corrupt(pos, "trailing bytes in record body".to_string()));
        }
        self.last_ticks = ticks;
        Ok(Some(record))
    }

    fn read_end(
        &mut self,
        body_offset: u64,
        digest_before: u64,
    ) -> Result<Option<StoredRecord>, StoreError> {
        let corrupt =
            |pos: usize, detail: String| StoreError::corrupt(body_offset + pos as u64, detail);
        let mut pos = 1usize;
        let quiescent = match self.scratch.get(pos) {
            Some(0) => false,
            Some(1) => true,
            other => {
                return Err(corrupt(pos, format!("bad quiescent byte {other:?}")));
            }
        };
        pos += 1;
        let events = read_varint(&self.scratch, &mut pos)
            .ok_or_else(|| corrupt(pos, "truncated event count".to_string()))?;
        let faults = read_varint(&self.scratch, &mut pos)
            .ok_or_else(|| corrupt(pos, "truncated fault count".to_string()))?;
        let digest_bytes = self
            .scratch
            .get(pos..pos + 8)
            .ok_or_else(|| corrupt(pos, "truncated stream digest".to_string()))?;
        let sealed = u64::from_le_bytes(digest_bytes.try_into().expect("8-byte slice"));
        pos += 8;
        if pos != self.scratch.len() {
            return Err(corrupt(pos, "trailing bytes in End record".to_string()));
        }
        if events != self.events_seen || faults != self.faults_seen {
            return Err(corrupt(
                0,
                format!(
                    "count mismatch: End record says {events} events / {faults} faults, \
                     stream had {} / {}",
                    self.events_seen, self.faults_seen
                ),
            ));
        }
        // The writer folds the quiescent byte into the digest before
        // sealing (it has no other cross-check); mirror that here.
        let digest_before = {
            let mut d = Digest::from_value(digest_before);
            d.update(&[u8::from(quiescent)]);
            d.value()
        };
        if sealed != digest_before {
            return Err(corrupt(
                0,
                format!("stream digest mismatch: sealed 0x{sealed:016x}, computed 0x{digest_before:016x}"),
            ));
        }
        // Nothing may follow the End record.
        let mut one = [0u8; 1];
        match self.input.read(&mut one) {
            Ok(0) => {}
            Ok(_) => {
                return Err(StoreError::corrupt(
                    self.offset,
                    "bytes after the End record",
                ));
            }
            Err(e) => return Err(e.into()),
        }
        self.trailer = Some(Trailer {
            quiescent,
            events,
            faults,
        });
        Ok(None)
    }

    fn framed_varint(&mut self, what: &str) -> Result<u64, StoreError> {
        read_stream_varint_hashed(
            &mut self.input,
            &mut self.offset,
            Some(&mut self.digest),
            what,
        )
    }
}

/// Reads exactly `buf.len()` bytes, mapping EOF to a truncation error at
/// `offset`.
fn read_exact_at<R: Read>(input: &mut R, buf: &mut [u8], offset: u64) -> Result<(), StoreError> {
    input.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::corrupt(offset, "file truncated")
        } else {
            StoreError::Io(e)
        }
    })
}

fn read_stream_varint<R: Read>(
    input: &mut R,
    offset: &mut u64,
    what: &str,
) -> Result<u64, StoreError> {
    read_stream_varint_hashed(input, offset, None, what)
}

/// Decodes one varint directly from the stream, advancing `offset` and
/// folding the consumed bytes into `digest` when given.
fn read_stream_varint_hashed<R: Read>(
    input: &mut R,
    offset: &mut u64,
    mut digest: Option<&mut Digest>,
    what: &str,
) -> Result<u64, StoreError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for i in 0..MAX_VARINT_LEN as u32 + 1 {
        let mut byte = [0u8; 1];
        input.read_exact(&mut byte).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                StoreError::corrupt(*offset, format!("file truncated reading {what}"))
            } else {
                StoreError::Io(e)
            }
        })?;
        if let Some(d) = digest.as_deref_mut() {
            d.update(&byte);
        }
        *offset += 1;
        let b = byte[0];
        if shift == 63 && b > 1 || i as usize >= MAX_VARINT_LEN {
            return Err(StoreError::corrupt(
                *offset,
                format!("overlong varint reading {what}"),
            ));
        }
        value |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
    unreachable!("loop returns within MAX_VARINT_LEN + 1 iterations")
}

/// Feeds every stored record of `reader` to `observer` in file order —
/// which is the recorded runtime's exact emission order — and returns the
/// verified trailer.
///
/// # Errors
///
/// Propagates any [`TraceReader`] decoding error.
pub fn replay_into<R: Read, O: Observer>(
    reader: &mut TraceReader<R>,
    observer: &mut O,
) -> Result<Trailer, StoreError> {
    while let Some(record) = reader.next_record()? {
        match record {
            StoredRecord::Event(e) => observer.on_event(&e),
            StoredRecord::Fault(f) => observer.on_fault(f.time, f.node, f.kind),
        }
    }
    Ok(*reader
        .trailer()
        .expect("next_record returned None only after the trailer"))
}

/// Replays a stored trace through a fresh [`OnlineValidator`] built from
/// the file's own topology and bounds, reproducing the live validator's
/// verdict: same violation set, same [`OnlineStats`].
///
/// # Errors
///
/// Propagates any [`TraceReader`] decoding error.
pub fn replay_validate<R: Read>(mut reader: TraceReader<R>) -> Result<TraceSummary, StoreError> {
    let mut validator = OnlineValidator::new(reader.dual().clone(), reader.config());
    let trailer = replay_into(&mut reader, &mut validator)?;
    let stats = validator.stats();
    let validation = validator.into_report(trailer.quiescent);
    Ok(TraceSummary {
        header: *reader.header(),
        events: trailer.events,
        faults: trailer.faults,
        quiescent: trailer.quiescent,
        validation,
        stats,
    })
}

/// The uniform summary of one stored execution: header metadata, record
/// counts, and the validator's verdict plus memory stats.
///
/// Both sides of the determinism contract print this: `repro <exp>
/// --record` builds it from the **live** validator attached during
/// recording, `repro replay` from a fresh validator over the stored
/// stream — for the same file the two renderings are byte-identical.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSummary {
    /// The trace file's header.
    pub header: TraceHeader,
    /// MAC-level event records.
    pub events: u64,
    /// Applied-fault records.
    pub faults: u64,
    /// The sealed quiescent flag.
    pub quiescent: bool,
    /// The validator's verdict over the execution.
    pub validation: ValidationReport,
    /// The validator's peak-memory statistics.
    pub stats: OnlineStats,
}

impl TraceSummary {
    /// Builds the summary for a just-recorded file from the **live**
    /// validator's results: header and counts are read back from `path`
    /// (header + trailer scan), `validation` and `stats` come from the
    /// validator that was attached to the recorded run.
    ///
    /// # Errors
    ///
    /// Fails when `path` cannot be read back as a well-formed trace.
    pub fn for_live(
        path: &Path,
        validation: ValidationReport,
        stats: OnlineStats,
    ) -> Result<TraceSummary, StoreError> {
        let mut reader = TraceReader::open(path)?;
        while reader.next_record()?.is_some() {}
        let trailer = *reader.trailer().expect("drained to the trailer");
        Ok(TraceSummary {
            header: *reader.header(),
            events: trailer.events,
            faults: trailer.faults,
            quiescent: trailer.quiescent,
            validation,
            stats,
        })
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "  header: {}", self.header)?;
        writeln!(
            f,
            "  records: {} event(s), {} fault(s)",
            self.events, self.faults
        )?;
        writeln!(f, "  quiescent: {}", self.quiescent)?;
        writeln!(
            f,
            "  stats: peak_live={} peak_tracked={} events={}",
            self.stats.peak_live, self.stats.peak_tracked, self.stats.events
        )?;
        write!(f, "  validation: {}", self.validation.summary())?;
        for v in self.validation.violations() {
            write!(f, "\n    {v}")?;
        }
        Ok(())
    }
}
