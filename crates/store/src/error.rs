//! Error type of the trace store: IO failures and every way a stored
//! trace can be malformed.

use std::fmt;
use std::io;

/// Why reading or writing a stored trace failed.
///
/// Readers must treat arbitrary bytes as hostile: every decoding failure
/// maps to a [`StoreError::Corrupt`] with the file offset where decoding
/// stopped, never a panic.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying IO operation failed.
    Io(io::Error),
    /// The file does not start with the format magic — not a trace file.
    BadMagic,
    /// The file's format version is newer than this reader understands.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// Newest version this reader supports.
        supported: u16,
    },
    /// The byte stream violates the format: a bad tag, an overlong varint,
    /// a digest mismatch, a truncation, a time running backwards.
    Corrupt {
        /// Byte offset (from the start of the file) where decoding stopped.
        offset: u64,
        /// What was wrong.
        detail: String,
    },
}

impl StoreError {
    /// Builds a [`StoreError::Corrupt`] at `offset`.
    pub(crate) fn corrupt(offset: u64, detail: impl Into<String>) -> StoreError {
        StoreError::Corrupt {
            offset,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "trace store IO error: {e}"),
            StoreError::BadMagic => {
                write!(f, "not an amac trace file (bad magic)")
            }
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "trace format version {found} is newer than the supported {supported}"
            ),
            StoreError::Corrupt { offset, detail } => {
                write!(f, "corrupt trace at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        assert!(StoreError::BadMagic.to_string().contains("magic"));
        let v = StoreError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(v.to_string().contains('9'));
        let c = StoreError::corrupt(17, "bad tag");
        assert!(c.to_string().contains("byte 17"));
        let io_err = StoreError::from(io::Error::other("boom"));
        assert!(io_err.to_string().contains("boom"));
        assert!(std::error::Error::source(&io_err).is_some());
        assert!(std::error::Error::source(&c).is_none());
    }
}
