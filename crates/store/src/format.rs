//! The on-disk format primitives: magic, header, varints, digests, and
//! the topology section.
//!
//! The byte-level layout is specified in `docs/TRACE_FORMAT.md`; this
//! module is its executable counterpart. Everything here is pure
//! byte-slice encoding/decoding — IO lives in [`write`](crate::write) and
//! [`read`](crate::read).

use crate::error::StoreError;
use amac_graph::{DualGraph, Graph, NodeId};
use amac_mac::{FaultPlan, MacConfig, ModelVariant};
use amac_sim::Duration;
use std::fmt;

/// The 8-byte file magic: ASCII `AMACTRC` plus a NUL.
pub const MAGIC: [u8; 8] = *b"AMACTRC\0";

/// The newest format version this crate reads and the only one it writes.
pub const FORMAT_VERSION: u16 = 1;

/// Fixed byte length of the header (magic included).
pub const HEADER_LEN: usize = 60;

/// Record tag of the End record (event/fault tags are the
/// `TraceKind::code()` / `FaultKind::code()` values 0–5).
pub const END_TAG: u8 = 0xFF;

/// Longest legal LEB128 encoding of a `u64` (10 groups of 7 bits).
pub const MAX_VARINT_LEN: usize = 10;

/// Streaming FNV-1a 64-bit digest, the format's integrity check — an
/// alias of the workspace-wide canonical implementation in
/// [`amac_sim::hash`]. It guards against corruption, not adversaries.
pub type Digest = amac_sim::Fnv1a;

/// FNV-1a 64-bit digest of a complete byte string (re-export of the
/// canonical [`amac_sim::fnv1a64`], kept here because the digest is part
/// of this crate's on-disk format contract).
pub use amac_sim::fnv1a64;

/// Digest of a [`FaultPlan`]: FNV-1a over each scheduled event's
/// `(time, node, kind code)` triple as LEB128 varints, in plan order. The
/// empty plan digests to the bare FNV offset basis. Stored in the header
/// so a replayed trace can be matched to the schedule that produced it.
pub fn fault_plan_digest(plan: &FaultPlan) -> u64 {
    let mut buf = Vec::new();
    for event in plan.events() {
        push_varint(&mut buf, event.at.ticks());
        push_varint(&mut buf, event.node.index() as u64);
        push_varint(&mut buf, u64::from(event.kind.code()));
    }
    fnv1a64(&buf)
}

/// Appends the LEB128 encoding of `value` to `buf`.
pub fn push_varint(buf: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decodes one LEB128 varint from `buf` starting at `*pos`, advancing
/// `*pos` past it. `None` on truncation or an overlong/overflowing
/// encoding.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // would overflow u64
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// The decoded fixed-size file header: format metadata plus everything
/// needed to rebuild the validator's inputs (bounds, variant, node count)
/// and to match the trace to its origin (seed, topology and fault-plan
/// digests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceHeader {
    /// Format version the file was written with.
    pub version: u16,
    /// MAC model variant of the recorded execution.
    pub variant: ModelVariant,
    /// Root RNG seed of the recorded execution (0 when the workload is
    /// seedless/deterministic).
    pub seed: u64,
    /// Progress bound `F_prog`, in ticks.
    pub f_prog: u64,
    /// Acknowledgment bound `F_ack`, in ticks.
    pub f_ack: u64,
    /// Number of nodes in the dual graph.
    pub nodes: u64,
    /// FNV-1a digest of the topology section's bytes.
    pub topology_digest: u64,
    /// [`fault_plan_digest`] of the schedule handed to the runtime (the
    /// empty-plan digest for fault-free runs).
    pub fault_plan_digest: u64,
}

impl TraceHeader {
    /// Builds the header for a run over `dual` under `config`.
    /// `topology_digest` must be the digest of the already-encoded
    /// topology section (see [`encode_topology`]).
    pub fn for_run(
        dual: &DualGraph,
        config: MacConfig,
        seed: u64,
        topology_digest: u64,
        fault_plan_digest: u64,
    ) -> TraceHeader {
        TraceHeader {
            version: FORMAT_VERSION,
            variant: config.variant(),
            seed,
            f_prog: config.f_prog().ticks(),
            f_ack: config.f_ack().ticks(),
            nodes: dual.len() as u64,
            topology_digest,
            fault_plan_digest,
        }
    }

    /// The MAC configuration the recorded execution ran under.
    pub fn config(&self) -> MacConfig {
        let cfg = MacConfig::new(
            Duration::from_ticks(self.f_prog),
            Duration::from_ticks(self.f_ack),
        );
        match self.variant {
            ModelVariant::Standard => cfg,
            ModelVariant::Enhanced => cfg.enhanced(),
        }
    }

    /// Encodes the header (magic included) to its fixed [`HEADER_LEN`]
    /// bytes.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        out[0..8].copy_from_slice(&MAGIC);
        out[8..10].copy_from_slice(&self.version.to_le_bytes());
        out[10] = match self.variant {
            ModelVariant::Standard => 0,
            ModelVariant::Enhanced => 1,
        };
        out[11] = 0; // reserved
        out[12..20].copy_from_slice(&self.seed.to_le_bytes());
        out[20..28].copy_from_slice(&self.f_prog.to_le_bytes());
        out[28..36].copy_from_slice(&self.f_ack.to_le_bytes());
        out[36..44].copy_from_slice(&self.nodes.to_le_bytes());
        out[44..52].copy_from_slice(&self.topology_digest.to_le_bytes());
        out[52..60].copy_from_slice(&self.fault_plan_digest.to_le_bytes());
        out
    }

    /// Decodes a header from its fixed [`HEADER_LEN`] bytes, rejecting a
    /// bad magic, an unsupported version, a bad variant byte, and bounds
    /// no [`MacConfig`] would accept.
    pub fn decode(bytes: &[u8; HEADER_LEN]) -> Result<TraceHeader, StoreError> {
        let le64 = |at: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[at..at + 8]);
            u64::from_le_bytes(b)
        };
        if bytes[0..8] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[8], bytes[9]]);
        if version == 0 || version > FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let variant = match bytes[10] {
            0 => ModelVariant::Standard,
            1 => ModelVariant::Enhanced,
            other => {
                return Err(StoreError::corrupt(10, format!("bad variant byte {other}")));
            }
        };
        let header = TraceHeader {
            version,
            variant,
            seed: le64(12),
            f_prog: le64(20),
            f_ack: le64(28),
            nodes: le64(36),
            topology_digest: le64(44),
            fault_plan_digest: le64(52),
        };
        if header.f_prog < 1 || header.f_ack < header.f_prog {
            return Err(StoreError::corrupt(
                20,
                format!(
                    "bad bounds: F_prog={} F_ack={} (need 1 <= F_prog <= F_ack)",
                    header.f_prog, header.f_ack
                ),
            ));
        }
        Ok(header)
    }
}

impl fmt::Display for TraceHeader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "v{} seed={} n={} F_prog={} F_ack={} variant={} topology=0x{:016x} fault-plan=0x{:016x}",
            self.version,
            self.seed,
            self.nodes,
            self.f_prog,
            self.f_ack,
            self.variant,
            self.topology_digest,
            self.fault_plan_digest,
        )
    }
}

/// Encodes the topology section: the edge list of `G` then the extra
/// edges of `G′ \ G`, each as a varint count followed by `(u, v)` varint
/// pairs with `u < v` in ascending order. The canonical order makes the
/// section — and therefore the whole file — byte-identical for equal
/// topologies.
pub fn encode_topology(dual: &DualGraph) -> Vec<u8> {
    let mut g_edges: Vec<(usize, usize)> = dual
        .g()
        .edges()
        .map(|(u, v)| (u.index(), v.index()))
        .collect();
    g_edges.sort_unstable();
    let mut extra: Vec<(usize, usize)> = dual
        .g_prime()
        .edges()
        .map(|(u, v)| (u.index(), v.index()))
        .filter(|&(u, v)| !dual.g().has_edge(NodeId::new(u), NodeId::new(v)))
        .collect();
    extra.sort_unstable();

    let mut buf = Vec::with_capacity(4 * (g_edges.len() + extra.len()) + 4);
    for list in [&g_edges, &extra] {
        push_varint(&mut buf, list.len() as u64);
        for &(u, v) in list {
            push_varint(&mut buf, u as u64);
            push_varint(&mut buf, v as u64);
        }
    }
    buf
}

/// Decodes a topology section back into the dual graph it encodes.
/// `base_offset` is the section's position in the file, used only for
/// error reporting.
pub fn decode_topology(
    bytes: &[u8],
    nodes: u64,
    base_offset: u64,
) -> Result<DualGraph, StoreError> {
    let n = usize::try_from(nodes)
        .map_err(|_| StoreError::corrupt(36, format!("node count {nodes} exceeds usize")))?;
    let mut pos = 0usize;
    let corrupt =
        |pos: usize, detail: &str| StoreError::corrupt(base_offset + pos as u64, detail.to_owned());
    let read_edges = |pos: &mut usize, what: &str| -> Result<Vec<(usize, usize)>, StoreError> {
        let count = read_varint(bytes, pos)
            .ok_or_else(|| corrupt(*pos, &format!("truncated {what} edge count")))?;
        // Each edge takes at least two bytes; a count beyond that is a lie
        // and must not drive allocation.
        if count > (bytes.len() as u64) / 2 {
            return Err(corrupt(
                *pos,
                &format!("{what} edge count {count} exceeds section size"),
            ));
        }
        let mut edges = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let u = read_varint(bytes, pos)
                .ok_or_else(|| corrupt(*pos, &format!("truncated {what} edge")))?;
            let v = read_varint(bytes, pos)
                .ok_or_else(|| corrupt(*pos, &format!("truncated {what} edge")))?;
            if u >= v || v >= nodes {
                return Err(corrupt(
                    *pos,
                    &format!("bad {what} edge ({u}, {v}) for n={nodes}"),
                ));
            }
            edges.push((u as usize, v as usize));
        }
        Ok(edges)
    };
    let g_edges = read_edges(&mut pos, "G")?;
    let extra = read_edges(&mut pos, "G'")?;
    if pos != bytes.len() {
        return Err(corrupt(pos, "trailing bytes after topology section"));
    }
    let g = Graph::from_edges(n, g_edges.iter().copied())
        .map_err(|e| corrupt(pos, &format!("bad G edge list: {e}")))?;
    let g_prime = Graph::from_edges(n, g_edges.into_iter().chain(extra))
        .map_err(|e| corrupt(pos, &format!("bad G' edge list: {e}")))?;
    DualGraph::new(g, g_prime).map_err(|e| corrupt(pos, &format!("bad dual graph: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use amac_graph::generators;
    use amac_sim::{SimRng, Time};

    #[test]
    fn varint_round_trips_across_widths() {
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ];
        for v in values {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            assert!(buf.len() <= MAX_VARINT_LEN);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v), "value {v}");
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut pos = 0;
        assert_eq!(read_varint(&[0x80], &mut pos), None, "truncated");
        // 11 continuation groups: longer than any u64 encoding.
        let overlong = [0xFFu8; 11];
        pos = 0;
        assert_eq!(read_varint(&overlong, &mut pos), None);
        // 10 bytes whose top group overflows bit 63.
        let mut overflow = [0x80u8; 10];
        overflow[9] = 0x02;
        pos = 0;
        assert_eq!(read_varint(&overflow, &mut pos), None);
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn header_round_trips() {
        let dual = DualGraph::reliable(generators::line(7).unwrap());
        let config = MacConfig::from_ticks(2, 16).enhanced();
        let header = TraceHeader::for_run(&dual, config, 42, 0xDEAD, 0xBEEF);
        let decoded = TraceHeader::decode(&header.encode()).unwrap();
        assert_eq!(decoded, header);
        assert_eq!(decoded.config(), config);
        assert_eq!(decoded.nodes, 7);
    }

    #[test]
    fn header_rejects_bad_magic_version_variant_bounds() {
        let dual = DualGraph::reliable(generators::line(3).unwrap());
        let header = TraceHeader::for_run(&dual, MacConfig::from_ticks(2, 16), 0, 0, 0);
        let good = header.encode();

        let mut bad = good;
        bad[0] = b'X';
        assert!(matches!(
            TraceHeader::decode(&bad),
            Err(StoreError::BadMagic)
        ));

        let mut bad = good;
        bad[8] = 99;
        assert!(matches!(
            TraceHeader::decode(&bad),
            Err(StoreError::UnsupportedVersion { found: 99, .. })
        ));

        let mut bad = good;
        bad[10] = 7;
        assert!(matches!(
            TraceHeader::decode(&bad),
            Err(StoreError::Corrupt { .. })
        ));

        let mut bad = good;
        bad[20..28].copy_from_slice(&0u64.to_le_bytes()); // F_prog = 0
        assert!(matches!(
            TraceHeader::decode(&bad),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn topology_round_trips_with_unreliable_edges() {
        let g = generators::grid(3, 4).unwrap();
        let mut rng = SimRng::seed(9);
        let dual = generators::r_restricted_augment(g, 2, 0.5, &mut rng).unwrap();
        let bytes = encode_topology(&dual);
        let decoded = decode_topology(&bytes, dual.len() as u64, 0).unwrap();
        assert_eq!(
            decoded.g().edges().collect::<Vec<_>>(),
            dual.g().edges().collect::<Vec<_>>()
        );
        assert_eq!(
            decoded.g_prime().edges().collect::<Vec<_>>(),
            dual.g_prime().edges().collect::<Vec<_>>()
        );
        // Canonical encoding: same topology, same bytes.
        assert_eq!(bytes, encode_topology(&decoded));
    }

    #[test]
    fn topology_decode_rejects_garbage() {
        // Edge endpoint out of range.
        let mut buf = Vec::new();
        push_varint(&mut buf, 1);
        push_varint(&mut buf, 0);
        push_varint(&mut buf, 9); // v=9 with n=3
        push_varint(&mut buf, 0);
        assert!(decode_topology(&buf, 3, 0).is_err());
        // Truncated mid-edge.
        let mut buf = Vec::new();
        push_varint(&mut buf, 2);
        push_varint(&mut buf, 0);
        assert!(decode_topology(&buf, 3, 0).is_err());
        // Lying count cannot trigger a huge allocation.
        let mut buf = Vec::new();
        push_varint(&mut buf, u64::MAX);
        assert!(decode_topology(&buf, 3, 0).is_err());
        // Trailing bytes.
        let mut buf = Vec::new();
        push_varint(&mut buf, 0);
        push_varint(&mut buf, 0);
        buf.push(0);
        assert!(decode_topology(&buf, 3, 0).is_err());
    }

    #[test]
    fn fault_plan_digest_distinguishes_plans() {
        let empty = fault_plan_digest(&FaultPlan::new());
        assert_eq!(
            empty, 0xcbf2_9ce4_8422_2325,
            "empty plan digests to the offset basis"
        );
        let a = FaultPlan::new().crash_at(NodeId::new(1), Time::from_ticks(5));
        let b = FaultPlan::new().crash_at(NodeId::new(1), Time::from_ticks(6));
        assert_ne!(fault_plan_digest(&a), fault_plan_digest(&b));
        assert_ne!(fault_plan_digest(&a), empty);
        assert_eq!(fault_plan_digest(&a), fault_plan_digest(&a.clone()));
    }
}
