//! # amac-store — durable trace store with deterministic replay
//!
//! The observer pipeline (`amac-mac`) made validation streaming: events
//! are consumed as they happen and nothing survives the process. This
//! crate adds the durable counterpart — a compact, versioned on-disk
//! format for MAC-level executions, written by a [`StoreObserver`]
//! attached like any other observer, and read back out-of-core by a
//! [`TraceReader`] so an execution can be re-validated (or re-consumed by
//! any [`Observer`](amac_mac::Observer)) long after, and on a different
//! machine than, the run that produced it.
//!
//! The format is specified byte-by-byte in `docs/TRACE_FORMAT.md`; the
//! [`mod@format`] module is its executable counterpart. The shape, briefly:
//!
//! ```text
//! header (60 B)      magic, version, variant, seed, F_prog, F_ack, n,
//!                    topology digest, fault-plan digest
//! topology section   varint length, then the dual graph's edge lists
//! records            length-prefixed, delta-timed event/fault records
//!                    in the runtime's exact emission order
//! End record         quiescent flag, counts, stream digest
//! ```
//!
//! **Determinism contract.** The format stores no wall-clock data, so a
//! file is a pure function of the recorded execution: the same seeded
//! workload records byte-identical files on every run and every machine.
//! Replaying through [`replay_validate`] rebuilds the validator from the
//! file's own topology and bounds and feeds it the stored stream in
//! emission order, reproducing the live validator's violation set and
//! [`OnlineStats`](amac_mac::OnlineStats) exactly.
//!
//! # Examples
//!
//! Record a BMMB run, then replay it through a fresh validator:
//!
//! ```
//! use amac_store::{replay_validate, TraceReader};
//! use amac_core::{run_bmmb, Assignment, RunOptions};
//! use amac_graph::{generators, DualGraph, NodeId};
//! use amac_mac::{policies::LazyPolicy, MacConfig};
//!
//! let dir = std::env::temp_dir().join("amac-store-lib-doc");
//! std::fs::create_dir_all(&dir)?;
//! let path = dir.join("line.amactrace");
//!
//! let dual = DualGraph::reliable(generators::line(6)?);
//! let report = run_bmmb(
//!     &dual,
//!     MacConfig::from_ticks(2, 20),
//!     &Assignment::all_at(NodeId::new(0), 2),
//!     LazyPolicy::new(),
//!     &RunOptions::default().recording(&path, 0),
//! );
//!
//! let summary = replay_validate(TraceReader::open(&path)?)?;
//! assert!(summary.validation.is_ok());
//! assert_eq!(Some(summary.stats), report.validator_stats);
//! # std::fs::remove_file(&path).ok();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod error;
pub mod format;
pub mod read;
pub mod write;

pub use error::StoreError;
pub use format::{fault_plan_digest, TraceHeader, FORMAT_VERSION};
pub use read::{replay_into, replay_validate, StoredRecord, TraceReader, TraceSummary, Trailer};
pub use write::{RecordSummary, StoreObserver, TraceWriter};

#[cfg(test)]
mod tests {
    use super::*;
    use amac_graph::{generators, DualGraph, NodeId};
    use amac_mac::trace::{TraceEntry, TraceKind};
    use amac_mac::{CounterObserver, FaultKind, InstanceId, MacConfig, MessageKey};
    use amac_sim::Time;

    fn entry(ticks: u64, node: usize, kind: TraceKind) -> TraceEntry {
        TraceEntry {
            time: Time::from_ticks(ticks),
            instance: InstanceId::new(3),
            node: NodeId::new(node),
            kind,
            key: MessageKey(99),
        }
    }

    fn sample_bytes() -> Vec<u8> {
        let dual = DualGraph::reliable(generators::line(4).unwrap());
        let mut w = TraceWriter::new(
            Vec::new(),
            &dual,
            MacConfig::from_ticks(2, 8).enhanced(),
            7,
            11,
        )
        .unwrap();
        w.write_event(&entry(0, 0, TraceKind::Bcast)).unwrap();
        w.write_event(&entry(2, 1, TraceKind::Rcv)).unwrap();
        w.write_fault(Time::from_ticks(3), NodeId::new(2), FaultKind::Crash)
            .unwrap();
        w.write_event(&entry(5, 0, TraceKind::Ack)).unwrap();
        w.finish(true).unwrap()
    }

    #[test]
    fn in_memory_round_trip_preserves_every_field() {
        let bytes = sample_bytes();
        let mut r = TraceReader::new(bytes.as_slice()).unwrap();
        assert_eq!(r.header().seed, 7);
        assert_eq!(r.header().fault_plan_digest, 11);
        assert_eq!(r.header().nodes, 4);
        assert_eq!(r.config(), MacConfig::from_ticks(2, 8).enhanced());
        assert_eq!(r.dual().g().edge_count(), 3);

        let mut records = Vec::new();
        while let Some(rec) = r.next_record().unwrap() {
            records.push(rec);
        }
        assert_eq!(
            records,
            vec![
                StoredRecord::Event(entry(0, 0, TraceKind::Bcast)),
                StoredRecord::Event(entry(2, 1, TraceKind::Rcv)),
                StoredRecord::Fault(amac_mac::trace::FaultRecord {
                    time: Time::from_ticks(3),
                    node: NodeId::new(2),
                    kind: FaultKind::Crash,
                }),
                StoredRecord::Event(entry(5, 0, TraceKind::Ack)),
            ]
        );
        assert_eq!(
            r.trailer(),
            Some(&Trailer {
                quiescent: true,
                events: 3,
                faults: 1,
            })
        );
        // Idempotent after the end.
        assert_eq!(r.next_record().unwrap(), None);
    }

    #[test]
    fn replay_into_feeds_any_observer() {
        let bytes = sample_bytes();
        let mut r = TraceReader::new(bytes.as_slice()).unwrap();
        let mut counter = CounterObserver::new();
        let trailer = replay_into(&mut r, &mut counter).unwrap();
        assert_eq!(counter.total(), 3);
        assert_eq!(counter.faults(), 1);
        assert_eq!(counter.count(TraceKind::Rcv), 1);
        assert_eq!(trailer.events, 3);
    }

    #[test]
    fn same_input_writes_byte_identical_files() {
        assert_eq!(sample_bytes(), sample_bytes());
    }

    #[test]
    fn every_truncation_is_rejected_not_misparsed() {
        let bytes = sample_bytes();
        for len in 0..bytes.len() {
            let prefix = &bytes[..len];
            let result = TraceReader::new(prefix).and_then(|mut r| {
                while r.next_record()?.is_some() {}
                Ok(())
            });
            assert!(result.is_err(), "prefix of {len} bytes must not parse");
        }
    }

    #[test]
    fn flipped_payload_byte_fails_the_stream_digest() {
        let bytes = sample_bytes();
        // Flip one byte in every position after the topology section; each
        // must produce an error (digest mismatch, or an earlier decode
        // failure), never a silent success.
        for at in format::HEADER_LEN..bytes.len() {
            let mut bad = bytes.clone();
            bad[at] ^= 0x40;
            let result = TraceReader::new(bad.as_slice()).and_then(|mut r| {
                while r.next_record()?.is_some() {}
                Ok(())
            });
            assert!(result.is_err(), "flipping byte {at} must not go unnoticed");
        }
    }

    #[test]
    fn bytes_after_the_end_record_are_rejected() {
        let mut bytes = sample_bytes();
        bytes.push(0);
        let mut r = TraceReader::new(bytes.as_slice()).unwrap();
        let mut err = None;
        loop {
            match r.next_record() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(err, Some(StoreError::Corrupt { .. })), "{err:?}");
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let dual = DualGraph::reliable(generators::line(2).unwrap());
        let w = TraceWriter::new(Vec::new(), &dual, MacConfig::from_ticks(1, 4), 0, 0).unwrap();
        let mut bytes = w.finish(false).unwrap();
        // Splice a record with tag 9 before the End record: frame it by
        // hand. (The End record's digest check also fires; the tag error
        // comes first.)
        // End record: 1-byte frame varint + body of tag(1) + flag(1) +
        // two zero counts(1+1) + digest(8) = 13 bytes.
        let end_start = bytes.len() - 13;
        let spliced = bytes.split_off(end_start);
        bytes.extend_from_slice(&[2, 9, 0]); // len=2, tag=9, one payload byte
        bytes.extend_from_slice(&spliced);
        let mut r = TraceReader::new(bytes.as_slice()).unwrap();
        let err = r.next_record().unwrap_err();
        assert!(err.to_string().contains("tag"), "{err}");
    }
}
