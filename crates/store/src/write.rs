//! The write side: a streaming [`TraceWriter`] over any `io::Write` sink
//! and the [`StoreObserver`] that plugs it into the runtime's observer
//! pipeline.

use crate::error::StoreError;
use crate::format::{
    encode_topology, fault_plan_digest, push_varint, Digest, TraceHeader, END_TAG,
};
use amac_graph::{DualGraph, NodeId};
use amac_mac::trace::TraceEntry;
use amac_mac::{FaultKind, FaultPlan, MacConfig, Observer};
use amac_sim::Time;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// How many buffered bytes the [`StoreObserver`] holds before flushing to
/// the file — the "bounded buffering" contract: recording memory is O(1)
/// in the execution length.
pub const WRITE_BUFFER_LEN: usize = 64 * 1024;

/// Streaming encoder of the on-disk trace format over any byte sink.
///
/// Construction writes the header and topology section; each
/// [`write_event`](TraceWriter::write_event) /
/// [`write_fault`](TraceWriter::write_fault) appends one length-prefixed
/// record in call order (which must be the runtime's emission order:
/// non-decreasing times); [`finish`](TraceWriter::finish) appends the End
/// record carrying the quiescent flag, the counts, and the stream digest.
/// A writer dropped without `finish` leaves a truncated file that readers
/// reject — finalization is explicit, never implicit.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    /// Digest over every record byte written so far (length prefixes
    /// included), sealed into the End record.
    digest: Digest,
    last_ticks: u64,
    events: u64,
    faults: u64,
    /// Reused record-encoding scratch buffer.
    scratch: Vec<u8>,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer for a run over `dual` under `config`, writing the
    /// header and topology section immediately.
    ///
    /// # Errors
    ///
    /// Propagates sink IO errors.
    pub fn new(
        out: W,
        dual: &DualGraph,
        config: MacConfig,
        seed: u64,
        fault_digest: u64,
    ) -> Result<TraceWriter<W>, StoreError> {
        let mut out = out;
        let topology = encode_topology(dual);
        let header = TraceHeader::for_run(
            dual,
            config,
            seed,
            crate::format::fnv1a64(&topology),
            fault_digest,
        );
        out.write_all(&header.encode())?;
        let mut prefix = Vec::new();
        push_varint(&mut prefix, topology.len() as u64);
        out.write_all(&prefix)?;
        out.write_all(&topology)?;
        Ok(TraceWriter {
            out,
            digest: Digest::new(),
            last_ticks: 0,
            events: 0,
            faults: 0,
            scratch: Vec::with_capacity(32),
        })
    }

    fn delta(&mut self, time: Time) -> Result<u64, StoreError> {
        let ticks = time.ticks();
        let delta = ticks.checked_sub(self.last_ticks).ok_or_else(|| {
            StoreError::corrupt(
                0,
                format!(
                    "record time t={ticks} runs backwards (previous t={})",
                    self.last_ticks
                ),
            )
        })?;
        self.last_ticks = ticks;
        Ok(delta)
    }

    fn write_record(&mut self) -> Result<(), StoreError> {
        let mut framed = Vec::with_capacity(self.scratch.len() + 2);
        push_varint(&mut framed, self.scratch.len() as u64);
        framed.extend_from_slice(&self.scratch);
        self.digest.update(&framed);
        self.out.write_all(&framed)?;
        Ok(())
    }

    /// Appends one MAC-level event record.
    ///
    /// # Errors
    ///
    /// Fails on sink IO errors and on a time running backwards (the
    /// runtime emits non-decreasing times; hand-fed streams must too).
    pub fn write_event(&mut self, event: &TraceEntry) -> Result<(), StoreError> {
        let delta = self.delta(event.time)?;
        self.scratch.clear();
        self.scratch.push(event.kind.code());
        push_varint(&mut self.scratch, delta);
        push_varint(&mut self.scratch, event.instance.seq());
        push_varint(&mut self.scratch, event.node.index() as u64);
        push_varint(&mut self.scratch, event.key.0);
        self.write_record()?;
        self.events += 1;
        Ok(())
    }

    /// Appends one applied-fault record.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`write_event`](TraceWriter::write_event).
    pub fn write_fault(
        &mut self,
        time: Time,
        node: NodeId,
        kind: FaultKind,
    ) -> Result<(), StoreError> {
        let delta = self.delta(time)?;
        self.scratch.clear();
        self.scratch.push(kind.code());
        push_varint(&mut self.scratch, delta);
        push_varint(&mut self.scratch, node.index() as u64);
        self.write_record()?;
        self.faults += 1;
        Ok(())
    }

    /// Event records written so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Fault records written so far.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Seals the stream: writes the End record (quiescent flag, counts,
    /// stream digest), flushes, and returns the sink.
    ///
    /// # Errors
    ///
    /// Propagates sink IO errors.
    pub fn finish(mut self, quiescent: bool) -> Result<W, StoreError> {
        self.scratch.clear();
        self.scratch.push(END_TAG);
        self.scratch.push(u8::from(quiescent));
        // Seal the quiescent flag into the stream digest: it is the one
        // End-record field with no cross-check against the stream itself,
        // so without this a single flipped bit would silently change the
        // stored outcome.
        self.digest.update(&[u8::from(quiescent)]);
        push_varint(&mut self.scratch, self.events);
        push_varint(&mut self.scratch, self.faults);
        self.scratch
            .extend_from_slice(&self.digest.value().to_le_bytes());
        let mut framed = Vec::with_capacity(self.scratch.len() + 2);
        push_varint(&mut framed, self.scratch.len() as u64);
        framed.extend_from_slice(&self.scratch);
        self.out.write_all(&framed)?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// What a finished recording wrote, as reported by
/// [`StoreObserver::finish`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordSummary {
    /// The trace file's path.
    pub path: PathBuf,
    /// MAC-level event records written.
    pub events: u64,
    /// Applied-fault records written.
    pub faults: u64,
    /// The quiescent flag sealed into the End record.
    pub quiescent: bool,
}

/// An [`Observer`] that streams every MAC event and fault to a trace file
/// with bounded buffering — the durable counterpart of
/// [`TraceObserver`](amac_mac::TraceObserver), holding O(1) memory instead
/// of O(events).
///
/// The `Observer` trait cannot surface errors, so IO failures are stashed:
/// the observer stops writing on the first failure and
/// [`finish`](StoreObserver::finish) reports it. A recording is only valid
/// once `finish` succeeded; anything else leaves a file readers reject as
/// truncated.
///
/// # Examples
///
/// ```
/// use amac_mac::{MacConfig, Runtime, RunOutcome, policies::EagerPolicy};
/// # use amac_mac::{Automaton, Ctx, MacMessage, MessageKey};
/// use amac_graph::{generators, DualGraph};
/// use amac_store::StoreObserver;
/// # #[derive(Clone, Debug)]
/// # struct T;
/// # impl MacMessage for T { fn key(&self) -> MessageKey { MessageKey(0) } }
/// # struct Quiet;
/// # impl Automaton for Quiet {
/// #     type Msg = T; type Env = (); type Out = ();
/// #     fn on_receive(&mut self, _: &T, _: &mut Ctx<'_, T, ()>) {}
/// #     fn on_ack(&mut self, _: &T, _: &mut Ctx<'_, T, ()>) {}
/// # }
/// let dir = std::env::temp_dir().join("amac-store-doc");
/// std::fs::create_dir_all(&dir)?;
/// let path = dir.join("quiet.amactrace");
/// let dual = DualGraph::reliable(generators::line(2)?);
/// let config = MacConfig::from_ticks(1, 4);
/// let mut rt = Runtime::new(dual.clone(), config, vec![Quiet, Quiet], EagerPolicy::new());
/// let store = rt.attach(StoreObserver::create(&path, &dual, config, 7, None)?);
/// let outcome = rt.run();
/// let summary = rt.detach(store).finish(outcome == RunOutcome::Idle)?;
/// assert_eq!(summary.events, 0, "nobody broadcast");
/// # std::fs::remove_file(&path).ok();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct StoreObserver {
    writer: Option<TraceWriter<BufWriter<File>>>,
    error: Option<StoreError>,
    path: PathBuf,
}

impl StoreObserver {
    /// Creates the trace file at `path` (truncating an existing file) and
    /// writes the header and topology section for a run over `dual` under
    /// `config`. `faults` is the plan handed to the runtime, digested into
    /// the header (`None` for fault-free runs).
    ///
    /// # Errors
    ///
    /// Fails when the file cannot be created or the header cannot be
    /// written.
    pub fn create(
        path: &Path,
        dual: &DualGraph,
        config: MacConfig,
        seed: u64,
        faults: Option<&FaultPlan>,
    ) -> Result<StoreObserver, StoreError> {
        let fault_digest = fault_plan_digest(faults.unwrap_or(&FaultPlan::new()));
        let file = File::create(path)?;
        let writer = TraceWriter::new(
            BufWriter::with_capacity(WRITE_BUFFER_LEN, file),
            dual,
            config,
            seed,
            fault_digest,
        )?;
        Ok(StoreObserver {
            writer: Some(writer),
            error: None,
            path: path.to_path_buf(),
        })
    }

    fn record(
        &mut self,
        op: impl FnOnce(&mut TraceWriter<BufWriter<File>>) -> Result<(), StoreError>,
    ) {
        if self.error.is_some() {
            return;
        }
        if let Some(writer) = self.writer.as_mut() {
            if let Err(e) = op(writer) {
                self.error = Some(e);
                self.writer = None; // stop writing; the file is already bad
            }
        }
    }

    /// Seals the recording with the End record and flushes the file.
    /// `quiescent` is whether the recorded run ended by draining its event
    /// queue (`RunOutcome::Idle`) — replayed validators condition the
    /// liveness guarantees on it exactly like a live one.
    ///
    /// # Errors
    ///
    /// Reports the first error hit while streaming, or the failure to
    /// write the End record.
    pub fn finish(self, quiescent: bool) -> Result<RecordSummary, StoreError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let writer = self.writer.expect("no error implies a live writer");
        let (events, faults) = (writer.events(), writer.faults());
        writer.finish(quiescent)?;
        Ok(RecordSummary {
            path: self.path,
            events,
            faults,
            quiescent,
        })
    }
}

impl Observer for StoreObserver {
    fn on_event(&mut self, event: &TraceEntry) {
        self.record(|w| w.write_event(event));
    }

    fn on_fault(&mut self, time: Time, node: NodeId, kind: FaultKind) {
        self.record(|w| w.write_fault(time, node, kind));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amac_graph::generators;
    use amac_mac::trace::TraceKind;
    use amac_mac::{InstanceId, MessageKey};

    fn entry(ticks: u64, kind: TraceKind) -> TraceEntry {
        TraceEntry {
            time: Time::from_ticks(ticks),
            instance: InstanceId::new(0),
            node: NodeId::new(0),
            kind,
            key: MessageKey(1),
        }
    }

    fn writer() -> TraceWriter<Vec<u8>> {
        let dual = DualGraph::reliable(generators::line(2).unwrap());
        TraceWriter::new(Vec::new(), &dual, MacConfig::from_ticks(1, 4), 0, 0).unwrap()
    }

    #[test]
    fn writer_counts_records() {
        let mut w = writer();
        w.write_event(&entry(0, TraceKind::Bcast)).unwrap();
        w.write_fault(Time::from_ticks(2), NodeId::new(1), FaultKind::Crash)
            .unwrap();
        w.write_event(&entry(2, TraceKind::Ack)).unwrap();
        assert_eq!(w.events(), 2);
        assert_eq!(w.faults(), 1);
        let bytes = w.finish(true).unwrap();
        assert!(bytes.len() > crate::format::HEADER_LEN);
    }

    #[test]
    fn writer_rejects_time_running_backwards() {
        let mut w = writer();
        w.write_event(&entry(5, TraceKind::Bcast)).unwrap();
        let err = w.write_event(&entry(4, TraceKind::Rcv)).unwrap_err();
        assert!(err.to_string().contains("backwards"), "{err}");
    }

    #[test]
    fn store_observer_reports_create_failure() {
        let dual = DualGraph::reliable(generators::line(2).unwrap());
        let missing = Path::new("/nonexistent-dir-amac/never.amactrace");
        let err = StoreObserver::create(missing, &dual, MacConfig::from_ticks(1, 4), 0, None)
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, StoreError::Io(_)));
    }
}
