//! # amac-proto — protocol services on the abstract MAC layer
//!
//! The PODC 2014 paper positions the abstract MAC layer as a reusable
//! substrate: multi-message broadcast (MMB/FMMB, in `amac-core`) is just
//! the first service built on it. Follow-up work builds much stronger
//! services on the same `bcast`/`ack` interface under **node-crash
//! faults** — *Fault-Tolerant Consensus with an Abstract MAC Layer*
//! (Newport & Robinson, DISC 2018) and *The Power of Abstract MAC Layer:
//! A Fault-tolerance Perspective* (Zhang & Tseng, 2024). This crate
//! reproduces that layer-above-the-layer:
//!
//! * [`consensus`] — **crash-tolerant binary consensus** in the
//!   Newport–Robinson style: timed flooding phases driven by `bcast`/`ack`
//!   over the enhanced MAC layer, tolerating up to `phases − 1` crashes
//!   (partial deliveries included) on any topology that crashes cannot
//!   disconnect. Agreement, validity, integrity, and termination of live
//!   nodes are re-checked post hoc by [`validate_consensus`].
//! * [`election`] — **wake-up / leader election** via randomized broadcast
//!   back-off: nodes sleep a random delay, the first to wake claims
//!   leadership, claims flood and suppress later wake-ups, and the
//!   smallest claimed id wins. Checked post hoc by [`validate_election`].
//!
//! Both services run on [`amac_mac::Runtime`] automata and exercise the
//! fault-injection subsystem ([`amac_mac::FaultPlan`]): a crash silences a
//! node's broadcasts and acknowledgments mid-instance, which is precisely
//! the half-delivered-broadcast adversary those papers are about.
//!
//! ## Example: consensus surviving crashes
//!
//! ```
//! use amac_core::RunOptions;
//! use amac_graph::{generators, DualGraph};
//! use amac_mac::{policies::LazyPolicy, FaultPlan, MacConfig};
//! use amac_proto::consensus::{run_consensus, ConsensusParams};
//! use amac_sim::{SimRng, Time};
//!
//! let n = 8;
//! let dual = DualGraph::reliable(generators::complete(n)?);
//! let config = MacConfig::from_ticks(2, 16).enhanced();
//! // Tolerate up to 2 crashes: 3 flooding phases.
//! let params = ConsensusParams::for_crashes(2, &config);
//! let mut rng = SimRng::seed(7);
//! let faults = FaultPlan::random_crashes(n, 2, params.horizon(), &mut rng);
//! let initial: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
//! let report = run_consensus(
//!     &dual,
//!     config,
//!     &initial,
//!     &params,
//!     faults,
//!     LazyPolicy::new().prefer_duplicates(),
//!     &RunOptions::default(),
//! );
//! // Agreement + validity + termination of live nodes, all checked:
//! assert!(report.ok(), "{}", report.check);
//! # Ok::<(), amac_graph::GraphError>(())
//! ```

pub mod consensus;
pub mod election;

pub use consensus::{
    run_consensus, validate_consensus, ConsensusCheck, ConsensusParams, ConsensusReport,
    ConsensusViolation, Decision,
};
pub use election::{
    run_election, run_election_with_backoffs, validate_election, ElectionCheck, ElectionReport,
    ElectionViolation,
};
