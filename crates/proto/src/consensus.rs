//! Crash-tolerant binary consensus on the enhanced abstract MAC layer, in
//! the style of Newport & Robinson (DISC 2018).
//!
//! ## The algorithm
//!
//! Time is cut into `phases` flooding rounds of `phase_len` each, with
//! `phase_len > F_ack` so every round's broadcast completes (delivers to
//! all live reliable neighbors, then acks) strictly inside its round. Each
//! node keeps a current estimate `v` (initially its input):
//!
//! 1. at the start of every round it broadcasts `(round, v)`;
//! 2. whenever it receives an estimate it folds it in (`v := v ∧ v'` — the
//!    binary *min*, so `false` is contagious);
//! 3. after round `phases` it decides `v` and goes quiet.
//!
//! This is the classic FloodSet argument driven entirely by `bcast`/`ack`:
//! a node that crashes mid-broadcast may deliver to only *some* neighbors
//! (the abstract MAC layer's partial-delivery adversary, injected here via
//! [`FaultPlan`]), but with at most `phases − 1` crashes some round is
//! crash-free, every live node's estimate floods everywhere in it, and all
//! estimates are equal from then on. Hence with crash budget `f`,
//! [`ConsensusParams::for_crashes`] picks `f + 1` phases:
//!
//! * **agreement** — all decisions (including by nodes that crash after
//!   deciding) are equal;
//! * **validity** — the decision is some node's input (a fold of inputs);
//! * **integrity** — one decision per node;
//! * **termination** — every node alive at the horizon decides by round
//!   `phases` (deterministic here; the randomized NR18 protocol gets the
//!   analogous guarantee w.h.p.).
//!
//! All four are re-checked per execution by [`validate_consensus`] — the
//! consensus-level analogue of [`amac_mac::validate`] — and the MAC-level
//! trace (crash events included) still passes `amac_mac::validate`.
//!
//! The guarantees assume the crash pattern cannot disconnect the reliable
//! graph `G` (e.g. a complete single-hop `G`, the NR18 setting). The
//! `amac-lower` crate ships a choke-star scenario showing exactly how
//! flooding consensus breaks when a crash *does* disconnect `G`.

use amac_core::RunOptions;
use amac_graph::{DualGraph, NodeId};
use amac_mac::trace::Trace;
use amac_mac::{
    Automaton, Ctx, FaultPlan, MacConfig, MacMessage, MessageKey, OnlineStats, OnlineValidator,
    Policy, RunOutcome, Runtime, TraceObserver, ValidationReport,
};
use amac_sim::stats::Counters;
use amac_sim::{Duration, Time};
use std::fmt;

/// One flooding-phase estimate: the sender's current value, tagged with
/// the round it was broadcast in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConsensusMsg {
    /// The flooding round this estimate belongs to.
    pub phase: u64,
    /// The sender's estimate at the round start.
    pub value: bool,
}

impl MacMessage for ConsensusMsg {
    /// Semantic key: estimates with the same `(phase, value)` are
    /// interchangeable, so duplicate-feeding schedulers treat them as
    /// duplicates — which the min-fold absorbs for free.
    fn key(&self) -> MessageKey {
        MessageKey((self.phase << 1) | self.value as u64)
    }
}

/// A node's irrevocable consensus output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decision(pub bool);

/// Timing parameters of one consensus instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConsensusParams {
    /// Number of flooding rounds before deciding.
    pub phases: u64,
    /// Round length; must exceed `F_ack` so a round's broadcasts complete
    /// inside it.
    pub phase_len: Duration,
}

impl ConsensusParams {
    /// Parameters tolerating up to `max_crashes` node crashes:
    /// `max_crashes + 1` rounds of `F_ack + 2` ticks each.
    pub fn for_crashes(max_crashes: usize, config: &MacConfig) -> ConsensusParams {
        ConsensusParams {
            phases: max_crashes as u64 + 1,
            phase_len: config.f_ack() + Duration::from_ticks(2),
        }
    }

    /// The instant by which every live node has decided: the end of the
    /// last round, plus one tick of slack.
    pub fn horizon(&self) -> Time {
        Time::ZERO + self.phase_len.times(self.phases) + Duration::TICK
    }
}

/// The per-node automaton: see the [module docs](self) for the protocol.
#[derive(Debug)]
pub struct ConsensusNode {
    params: ConsensusParams,
    value: bool,
    phase: u64,
    decided: Option<bool>,
    rebroadcast_on_ack: bool,
}

impl ConsensusNode {
    /// A node with input `value`.
    pub fn new(value: bool, params: ConsensusParams) -> ConsensusNode {
        ConsensusNode {
            params,
            value,
            phase: 0,
            decided: None,
            rebroadcast_on_ack: false,
        }
    }

    /// The node's current estimate.
    pub fn estimate(&self) -> bool {
        self.value
    }

    /// The node's decision, once made.
    pub fn decision(&self) -> Option<bool> {
        self.decided
    }

    fn broadcast_estimate(&mut self, ctx: &mut Ctx<'_, ConsensusMsg, Decision>) {
        if ctx.has_broadcast_in_flight() {
            // Only reachable when phase_len <= F_ack (a misconfiguration):
            // fall back to rebroadcasting as soon as the ack frees us.
            self.rebroadcast_on_ack = true;
        } else {
            ctx.bcast(ConsensusMsg {
                phase: self.phase,
                value: self.value,
            });
        }
    }
}

impl Automaton for ConsensusNode {
    type Msg = ConsensusMsg;
    type Env = ();
    type Out = Decision;

    fn on_start(&mut self, ctx: &mut Ctx<'_, ConsensusMsg, Decision>) {
        self.broadcast_estimate(ctx);
        ctx.set_timer(self.params.phase_len, 0);
    }

    fn on_receive(&mut self, msg: &ConsensusMsg, _ctx: &mut Ctx<'_, ConsensusMsg, Decision>) {
        if self.decided.is_none() {
            // Binary min-fold: `false` is contagious.
            self.value &= msg.value;
        }
    }

    fn on_ack(&mut self, _msg: &ConsensusMsg, ctx: &mut Ctx<'_, ConsensusMsg, Decision>) {
        if self.rebroadcast_on_ack && self.decided.is_none() {
            self.rebroadcast_on_ack = false;
            self.broadcast_estimate(ctx);
        }
    }

    fn on_timer(&mut self, _tag: u64, ctx: &mut Ctx<'_, ConsensusMsg, Decision>) {
        if self.decided.is_some() {
            return;
        }
        self.phase += 1;
        if self.phase >= self.params.phases {
            self.decided = Some(self.value);
            ctx.output(Decision(self.value));
        } else {
            self.broadcast_estimate(ctx);
            ctx.set_timer(self.params.phase_len, 0);
        }
    }
}

/// A violation of the consensus guarantees found in one execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConsensusViolation {
    /// Two nodes decided different values.
    Disagreement {
        /// A node that decided `false`.
        no: NodeId,
        /// A node that decided `true`.
        yes: NodeId,
    },
    /// A node decided a value that was nobody's input.
    InvalidDecision {
        /// The offending node.
        node: NodeId,
        /// The decided value.
        value: bool,
    },
    /// A node alive at the horizon never decided.
    MissingDecision {
        /// The silent node.
        node: NodeId,
    },
    /// A node decided more than once.
    DuplicateDecision {
        /// The offending node.
        node: NodeId,
    },
}

impl fmt::Display for ConsensusViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsensusViolation::Disagreement { no, yes } => {
                write!(f, "{no} decided false but {yes} decided true (agreement)")
            }
            ConsensusViolation::InvalidDecision { node, value } => {
                write!(
                    f,
                    "{node} decided {value}, which was nobody's input (validity)"
                )
            }
            ConsensusViolation::MissingDecision { node } => {
                write!(f, "live node {node} never decided (termination)")
            }
            ConsensusViolation::DuplicateDecision { node } => {
                write!(f, "{node} decided more than once (integrity)")
            }
        }
    }
}

/// The post-hoc consensus verdict: agreement, validity, integrity, and
/// termination of live nodes, re-derived from the recorded decisions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConsensusCheck {
    violations: Vec<ConsensusViolation>,
}

impl ConsensusCheck {
    /// `true` when all four guarantees held.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// All violations found.
    pub fn violations(&self) -> &[ConsensusViolation] {
        &self.violations
    }
}

impl fmt::Display for ConsensusCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ok() {
            return write!(f, "consensus guarantees hold");
        }
        writeln!(f, "{} consensus violation(s):", self.violations.len())?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

/// Re-checks the consensus guarantees from one execution's observables:
/// per-node inputs, per-node decisions (with duplicates flagged by the
/// harness), and which nodes were still live at the horizon.
///
/// Agreement and validity cover *every* decision made, including by nodes
/// that crashed afterwards (crash-stop semantics: a decision, once output,
/// counts). Termination is conditioned on liveness: only nodes alive at
/// the horizon must have decided.
pub fn validate_consensus(
    initial: &[bool],
    decisions: &[Option<(Time, bool)>],
    duplicates: &[NodeId],
    live: &[bool],
) -> ConsensusCheck {
    let mut check = ConsensusCheck::default();
    let first_no = decisions
        .iter()
        .position(|d| matches!(d, Some((_, false))))
        .map(NodeId::new);
    let first_yes = decisions
        .iter()
        .position(|d| matches!(d, Some((_, true))))
        .map(NodeId::new);
    if let (Some(no), Some(yes)) = (first_no, first_yes) {
        check
            .violations
            .push(ConsensusViolation::Disagreement { no, yes });
    }
    for (i, d) in decisions.iter().enumerate() {
        match d {
            Some((_, value)) => {
                if !initial.contains(value) {
                    check.violations.push(ConsensusViolation::InvalidDecision {
                        node: NodeId::new(i),
                        value: *value,
                    });
                }
            }
            None => {
                if live[i] {
                    check.violations.push(ConsensusViolation::MissingDecision {
                        node: NodeId::new(i),
                    });
                }
            }
        }
    }
    for &node in duplicates {
        check
            .violations
            .push(ConsensusViolation::DuplicateDecision { node });
    }
    check
}

/// Result of one consensus execution.
#[derive(Clone, Debug)]
pub struct ConsensusReport {
    /// Per-node decision (time, value), `None` for nodes that never
    /// decided (crashed early).
    pub decisions: Vec<Option<(Time, bool)>>,
    /// Per-node liveness at the end of the run (`false` = crashed).
    pub live: Vec<bool>,
    /// The inputs.
    pub initial: Vec<bool>,
    /// First instant at which every live node had decided, if reached.
    pub completion: Option<Time>,
    /// Simulated time when the run stopped.
    pub end_time: Time,
    /// Why the run stopped.
    pub outcome: RunOutcome,
    /// MAC-level event counters (includes `crash`/`recover`).
    pub counters: Counters,
    /// The consensus-level verdict ([`validate_consensus`]).
    pub check: ConsensusCheck,
    /// MAC-model trace validation, when requested via
    /// [`RunOptions::validate`].
    pub validation: Option<ValidationReport>,
    /// Peak-memory statistics of the streaming validator, when validation
    /// ran.
    pub validator_stats: Option<OnlineStats>,
    /// The recorded MAC trace, when [`RunOptions::keep_trace`] was set.
    pub trace: Option<Trace>,
    /// Per-shard execution statistics when the run was sharded
    /// ([`RunOptions::shards`] ≥ 1), `None` for sequential runs.
    pub shard_stats: Option<amac_sim::ShardStats>,
    /// Deterministic sim-time metrics when [`RunOptions::metrics`] was
    /// set (with the shard diagnostics side channel attached on sharded
    /// runs).
    pub metrics: Option<amac_obs::MetricsReport>,
}

impl ConsensusReport {
    /// The agreed value, when at least one node decided and agreement
    /// held.
    pub fn agreed_value(&self) -> Option<bool> {
        if !self.check.is_ok() {
            return None;
        }
        self.decisions.iter().flatten().map(|&(_, v)| v).next()
    }

    /// `true` when all live nodes decided, the consensus guarantees held,
    /// and (if validated) the MAC trace conformed to the model.
    pub fn ok(&self) -> bool {
        self.completion.is_some()
            && self.check.is_ok()
            && self
                .validation
                .as_ref()
                .map_or(true, amac_mac::ValidationReport::is_ok)
    }

    /// Completion time in ticks.
    ///
    /// # Panics
    ///
    /// Panics if some live node never decided.
    pub fn completion_ticks(&self) -> u64 {
        self.completion
            .expect("consensus run did not complete")
            .ticks()
    }

    /// Number of consensus violations plus MAC-trace violations — the
    /// quantity the `consensus_crash` experiment aggregates (its mean must
    /// be exactly 0).
    pub fn violation_count(&self) -> usize {
        self.check.violations().len() + self.validation.as_ref().map_or(0, |v| v.violations().len())
    }
}

impl fmt::Display for ConsensusReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.completion {
            Some(t) => write!(f, "consensus at t={t}")?,
            None => write!(f, "consensus incomplete")?,
        }
        let crashed = self.live.iter().filter(|&&l| !l).count();
        write!(
            f,
            "; {} node(s), {} crashed, {}",
            self.live.len(),
            crashed,
            self.check
        )
    }
}

/// Runs one consensus instance over `dual` under the given fault plan and
/// scheduler policy, then re-checks the consensus guarantees (and, when
/// requested, MAC-model conformance of the trace, crash events included).
///
/// # Panics
///
/// Panics unless `config` is the enhanced variant (the protocol needs
/// timers) and `initial.len() == dual.len()`. Also panics if the fault
/// plan schedules *recovery* events: this is a **crash-stop** protocol
/// (as in NR18) — a node re-joining mid-protocol would have lost its
/// phase timers and could re-flood a stale estimate after the others
/// converged, so recovery needs a different algorithm, not a silent
/// best effort.
pub fn run_consensus<P: Policy>(
    dual: &DualGraph,
    config: MacConfig,
    initial: &[bool],
    params: &ConsensusParams,
    faults: FaultPlan,
    policy: P,
    options: &RunOptions,
) -> ConsensusReport {
    assert!(
        config.is_enhanced(),
        "consensus drives its rounds with timers: use MacConfig::enhanced()"
    );
    assert_eq!(initial.len(), dual.len(), "need exactly one input per node");
    assert!(
        faults
            .events()
            .iter()
            .all(|e| e.kind != amac_mac::FaultKind::Recover),
        "consensus is crash-stop: recovery events are not supported (a re-joining \
         node could re-flood a stale estimate and break agreement)"
    );
    let n = dual.len();
    let nodes = initial
        .iter()
        .map(|&v| ConsensusNode::new(v, *params))
        .collect();
    let recorder_store = amac_core::attach_recorder(options, dual, config, Some(&faults));
    let mut rt = Runtime::new(dual.clone(), config, nodes, policy);
    if options.shards > 0 {
        rt = rt.with_shards(options.shards);
        if options.shard_threads > 0 {
            rt = rt.with_shard_threads(options.shard_threads);
        }
    }
    let mut rt = rt.with_faults(faults);
    let validator = options
        .validate
        .then(|| rt.attach(OnlineValidator::new(dual.clone(), config)));
    let tracer = options.keep_trace.then(|| rt.attach(TraceObserver::new()));
    let recorder = recorder_store.map(|store| rt.attach(store));
    let metrics = amac_core::make_metrics(options, config).map(|m| rt.attach(m));
    let spans = amac_core::make_spans(options, dual).map(|s| rt.attach(s));
    if options.metrics {
        rt.enable_shard_profiling();
    }

    let mut decisions: Vec<Option<(Time, bool)>> = vec![None; n];
    let mut duplicates: Vec<NodeId> = Vec::new();
    let mut completion: Option<Time> = None;
    let horizon = options.horizon.min(params.horizon());
    let outcome = loop {
        let step_outcome = rt.run_until_next(horizon);
        for rec in rt.drain_outputs() {
            let slot = &mut decisions[rec.node.index()];
            if slot.is_some() {
                duplicates.push(rec.node);
            } else {
                let Decision(value) = rec.out;
                *slot = Some((rec.time, value));
            }
        }
        if completion.is_none() {
            let all_live_decided =
                (0..n).all(|i| decisions[i].is_some() || rt.is_crashed(NodeId::new(i)));
            if all_live_decided {
                completion = Some(rt.now());
                if options.stop_on_completion {
                    break RunOutcome::Stopped;
                }
            }
        }
        if let Some(o) = step_outcome {
            break o;
        }
    };

    let live: Vec<bool> = (0..n).map(|i| !rt.is_crashed(NodeId::new(i))).collect();
    let check = validate_consensus(initial, &decisions, &duplicates, &live);
    let mut validator_stats = None;
    let validation = validator.map(|handle| {
        let validator = rt.detach(handle);
        validator_stats = Some(validator.stats());
        validator.into_report(outcome == RunOutcome::Idle)
    });
    let trace = tracer.map(|handle| rt.detach(handle).into_trace());
    if let Some(handle) = recorder {
        amac_core::finish_recorder(rt.detach(handle), outcome == RunOutcome::Idle);
    }
    let metrics = metrics.map(|handle| {
        rt.detach(handle)
            .into_report()
            .with_shard_diagnostics(rt.shard_stats(), rt.shard_profile())
    });
    if let (Some(handle), Some(path)) = (spans, options.chrome_trace.as_deref()) {
        amac_core::finish_spans(&rt.detach(handle), path);
    }

    ConsensusReport {
        decisions,
        live,
        initial: initial.to_vec(),
        completion,
        end_time: rt.now(),
        outcome,
        counters: rt.counters(),
        check,
        validation,
        validator_stats,
        trace,
        shard_stats: rt.shard_stats(),
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amac_graph::generators;
    use amac_mac::policies::{EagerPolicy, LazyPolicy, RandomPolicy};
    use amac_sim::SimRng;

    fn complete_dual(n: usize) -> DualGraph {
        DualGraph::reliable(generators::complete(n).unwrap())
    }

    fn cfg() -> MacConfig {
        MacConfig::from_ticks(2, 16).enhanced()
    }

    fn alternating(n: usize) -> Vec<bool> {
        (0..n).map(|i| i % 2 == 0).collect()
    }

    #[test]
    fn crash_free_consensus_decides_the_min_everywhere() {
        let n = 8;
        let params = ConsensusParams::for_crashes(0, &cfg());
        let report = run_consensus(
            &complete_dual(n),
            cfg(),
            &alternating(n),
            &params,
            FaultPlan::new(),
            LazyPolicy::new().prefer_duplicates(),
            &RunOptions::default(),
        );
        assert!(report.ok(), "{report}");
        assert_eq!(report.agreed_value(), Some(false), "false is contagious");
        assert_eq!(report.completion_ticks(), params.phase_len.ticks());
    }

    #[test]
    fn all_true_inputs_decide_true() {
        let n = 5;
        let params = ConsensusParams::for_crashes(1, &cfg());
        let report = run_consensus(
            &complete_dual(n),
            cfg(),
            &vec![true; n],
            &params,
            FaultPlan::new(),
            EagerPolicy::new(),
            &RunOptions::default(),
        );
        assert!(report.ok(), "{report}");
        assert_eq!(
            report.agreed_value(),
            Some(true),
            "validity: all-true stays true"
        );
    }

    #[test]
    fn consensus_survives_random_crashes_within_budget() {
        let n = 10;
        for seed in 0..20u64 {
            let crashes = (seed % 4) as usize;
            let params = ConsensusParams::for_crashes(crashes, &cfg());
            let mut rng = SimRng::seed(seed);
            let faults = FaultPlan::random_crashes(n, crashes, params.horizon(), &mut rng);
            let report = run_consensus(
                &complete_dual(n),
                cfg(),
                &alternating(n),
                &params,
                faults,
                RandomPolicy::new(seed ^ 0xC0),
                &RunOptions::default(),
            );
            assert!(report.ok(), "seed {seed}: {report}");
            assert!(
                report.validation.as_ref().unwrap().is_ok(),
                "seed {seed}: MAC trace must stay valid under crashes"
            );
        }
    }

    #[test]
    fn mid_broadcast_crash_partial_delivery_is_absorbed() {
        // Crash the only false-valued node right after its first broadcast
        // starts: with budget 1 (two phases) the survivors still agree —
        // either everyone heard the false (decide false) or no one did
        // (decide true). Both are valid outcomes; agreement is the point.
        let n = 6;
        let params = ConsensusParams::for_crashes(1, &cfg());
        let mut initial = vec![true; n];
        initial[0] = false;
        for crash_tick in 0..params.phase_len.ticks() {
            let faults = FaultPlan::new().crash_at(NodeId::new(0), Time::from_ticks(crash_tick));
            let report = run_consensus(
                &complete_dual(n),
                cfg(),
                &initial,
                &params,
                faults,
                LazyPolicy::new().prefer_duplicates(),
                &RunOptions::default(),
            );
            assert!(report.ok(), "crash at t={crash_tick}: {report}");
        }
    }

    #[test]
    fn validator_flags_disagreement_and_bad_values() {
        let initial = vec![true, true];
        let decisions = vec![
            Some((Time::from_ticks(5), false)),
            Some((Time::from_ticks(5), true)),
        ];
        let check = validate_consensus(&initial, &decisions, &[NodeId::new(1)], &[true, true]);
        assert!(!check.is_ok());
        assert!(check
            .violations()
            .iter()
            .any(|v| matches!(v, ConsensusViolation::Disagreement { .. })));
        assert!(check
            .violations()
            .iter()
            .any(|v| matches!(v, ConsensusViolation::InvalidDecision { value: false, .. })));
        assert!(check
            .violations()
            .iter()
            .any(|v| matches!(v, ConsensusViolation::DuplicateDecision { .. })));
        let s = check.to_string();
        assert!(s.contains("agreement"));
    }

    #[test]
    fn validator_conditions_termination_on_liveness() {
        let initial = vec![true, false];
        let decisions = vec![None, Some((Time::from_ticks(3), false))];
        let live_silent = validate_consensus(&initial, &decisions, &[], &[true, true]);
        assert!(matches!(
            live_silent.violations()[0],
            ConsensusViolation::MissingDecision { .. }
        ));
        let crashed_silent = validate_consensus(&initial, &decisions, &[], &[false, true]);
        assert!(crashed_silent.is_ok(), "{crashed_silent}");
    }

    #[test]
    fn stop_on_completion_halts_at_the_decision() {
        let n = 4;
        let params = ConsensusParams::for_crashes(0, &cfg());
        let report = run_consensus(
            &complete_dual(n),
            cfg(),
            &alternating(n),
            &params,
            FaultPlan::new(),
            EagerPolicy::new(),
            &RunOptions::fast().stopping_on_completion(),
        );
        assert_eq!(report.outcome, RunOutcome::Stopped);
        assert!(report.completion.is_some());
    }

    #[test]
    #[should_panic(expected = "crash-stop")]
    fn recovery_plans_are_rejected() {
        let params = ConsensusParams::for_crashes(1, &cfg());
        let faults = FaultPlan::new()
            .crash_at(NodeId::new(0), Time::from_ticks(1))
            .recover_at(NodeId::new(0), Time::from_ticks(5));
        run_consensus(
            &complete_dual(3),
            cfg(),
            &[true, false, true],
            &params,
            faults,
            EagerPolicy::new(),
            &RunOptions::fast(),
        );
    }

    #[test]
    #[should_panic(expected = "enhanced")]
    fn standard_variant_is_rejected() {
        let params = ConsensusParams::for_crashes(0, &MacConfig::from_ticks(2, 16));
        run_consensus(
            &complete_dual(2),
            MacConfig::from_ticks(2, 16),
            &[true, false],
            &params,
            FaultPlan::new(),
            EagerPolicy::new(),
            &RunOptions::fast(),
        );
    }
}
