//! Wake-up / leader election via randomized broadcast back-off on the
//! enhanced abstract MAC layer.
//!
//! ## The protocol
//!
//! Every node draws an independent back-off delay uniformly from
//! `[0, window)` and sleeps. When its timer fires and it has heard no
//! claim yet, it *claims* leadership by broadcasting its own id; a node
//! that hears a claim first never initiates (suppression — the wake-up
//! service of the NR18 consensus construction). Claims flood: whenever a
//! node learns of a smaller claimed id it adopts it and rebroadcasts it
//! once (re-arming on `ack` if a better claim arrived mid-broadcast). On a
//! connected reliable graph the execution quiesces with every live node
//! agreeing on the *smallest claimed id* — typically after only a handful
//! of claims, because the first claim's flood outruns most back-off
//! timers.
//!
//! The back-off makes initiation count (message complexity) small while
//! the flood makes convergence fast: expected time is
//! `O(window + D·F_prog)` under any valid scheduler, which the `election`
//! experiment in `amac-bench` sweeps over grey-zone duals.
//!
//! [`validate_election`] re-checks the outcome post hoc: all live nodes
//! agree on one leader, that leader actually claimed, and (crash-free) it
//! is the smallest claimant. Crashes are supported via
//! [`FaultPlan`]: agreement among live nodes survives any crash pattern
//! that leaves the live part of `G` connected, though the elected id may
//! belong to a node that crashed after claiming (wake-up semantics: the
//! service elects an *id*, it does not monitor the leader's health).
//!
//! Crash-*recovery* is supported too, unlike in the crash-stop
//! [`consensus`](crate::consensus) protocol: a node re-joining re-arms its
//! back-off (if it never heard a claim) or re-announces its possibly stale
//! best, and the *challenge-response* rule — any node hearing a strictly
//! worse claim re-floods its better one — pulls the late-comer back to
//! the network's choice.

use amac_core::RunOptions;
use amac_graph::{DualGraph, NodeId};
use amac_mac::trace::Trace;
use amac_mac::{
    Automaton, Ctx, FaultPlan, MacConfig, MacMessage, MessageKey, OnlineStats, OnlineValidator,
    Policy, RunOutcome, Runtime, TraceObserver, ValidationReport,
};
use amac_sim::stats::Counters;
use amac_sim::{Duration, SimRng, Time};
use std::fmt;

/// A leadership claim: the smallest candidate id its sender knows of.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClaimMsg {
    /// The claimed candidate.
    pub candidate: NodeId,
}

impl MacMessage for ClaimMsg {
    /// Semantic key: every relay of the same candidate carries the same
    /// key, so duplicate-feeding schedulers recognize re-floods.
    fn key(&self) -> MessageKey {
        MessageKey(self.candidate.index() as u64)
    }
}

/// The per-node automaton: see the [module docs](self) for the protocol.
#[derive(Debug)]
pub struct ElectionNode {
    backoff: Duration,
    best: Option<NodeId>,
    initiated: bool,
    /// A strictly worse claim arrived while a broadcast was in flight:
    /// answer it with our better claim once the ack frees us.
    challenge: bool,
}

impl ElectionNode {
    /// A node that will claim leadership after `backoff` unless suppressed
    /// by an earlier claim.
    pub fn new(backoff: Duration) -> ElectionNode {
        ElectionNode {
            backoff,
            best: None,
            initiated: false,
            challenge: false,
        }
    }

    /// The smallest claimed id this node has adopted, if any.
    pub fn leader(&self) -> Option<NodeId> {
        self.best
    }

    /// `true` if this node initiated a claim of its own (its back-off
    /// fired before any claim reached it).
    pub fn initiated(&self) -> bool {
        self.initiated
    }

    fn adopt(&mut self, candidate: NodeId, ctx: &mut Ctx<'_, ClaimMsg, NodeId>) {
        self.best = Some(candidate);
        ctx.output(candidate);
        if !ctx.has_broadcast_in_flight() {
            ctx.bcast(ClaimMsg { candidate });
        }
        // Else: a stale claim is in flight; on_ack re-floods the newer one.
    }
}

impl Automaton for ElectionNode {
    type Msg = ClaimMsg;
    type Env = ();
    type Out = NodeId;

    fn on_start(&mut self, ctx: &mut Ctx<'_, ClaimMsg, NodeId>) {
        ctx.set_timer(self.backoff, 0);
    }

    fn on_timer(&mut self, _tag: u64, ctx: &mut Ctx<'_, ClaimMsg, NodeId>) {
        if self.best.is_none() {
            self.initiated = true;
            self.adopt(ctx.id(), ctx);
        }
    }

    fn on_receive(&mut self, msg: &ClaimMsg, ctx: &mut Ctx<'_, ClaimMsg, NodeId>) {
        match self.best {
            Some(b) if msg.candidate > b => {
                // Challenge-response: the sender believes in a strictly
                // worse leader (a late initiator, or a node re-joining
                // after an outage) — re-flood the better claim so it
                // converges instead of staying split.
                if ctx.has_broadcast_in_flight() {
                    self.challenge = true;
                } else {
                    ctx.bcast(ClaimMsg { candidate: b });
                }
            }
            Some(b) if msg.candidate == b => {}
            _ => self.adopt(msg.candidate, ctx),
        }
    }

    fn on_ack(&mut self, msg: &ClaimMsg, ctx: &mut Ctx<'_, ClaimMsg, NodeId>) {
        let challenged = std::mem::take(&mut self.challenge);
        if let Some(best) = self.best {
            if best < msg.candidate || challenged {
                // A better claim arrived while the old one was in flight,
                // or a worse claimant is waiting for correction.
                ctx.bcast(ClaimMsg { candidate: best });
            }
        }
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_, ClaimMsg, NodeId>) {
        match self.best {
            // The outage may have swallowed the back-off timer: re-arm it
            // (the node claims later unless a claim reaches it first).
            None => {
                ctx.set_timer(self.backoff, 0);
            }
            // Re-announce our best: if the network converged lower while
            // we were out, any neighbor's challenge-response corrects us.
            Some(b) => {
                if !ctx.has_broadcast_in_flight() {
                    ctx.bcast(ClaimMsg { candidate: b });
                }
            }
        }
    }
}

/// A violation of the election guarantees found in one execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ElectionViolation {
    /// Two live nodes ended with different leaders.
    LeaderDisagreement {
        /// A live node and its leader.
        a: NodeId,
        /// The disagreeing live node.
        b: NodeId,
    },
    /// A live node ended with no leader at all.
    MissingLeader {
        /// The leaderless node.
        node: NodeId,
    },
    /// The agreed leader never actually claimed leadership.
    PhantomLeader {
        /// The phantom id.
        leader: NodeId,
    },
    /// Crash-free executions must elect the *smallest* claimant.
    NotTheSmallestClaimant {
        /// The elected id.
        leader: NodeId,
        /// The smaller claimant that should have won.
        smallest: NodeId,
    },
}

impl fmt::Display for ElectionViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElectionViolation::LeaderDisagreement { a, b } => {
                write!(f, "live nodes {a} and {b} ended with different leaders")
            }
            ElectionViolation::MissingLeader { node } => {
                write!(f, "live node {node} ended with no leader")
            }
            ElectionViolation::PhantomLeader { leader } => {
                write!(f, "elected id {leader} never claimed leadership")
            }
            ElectionViolation::NotTheSmallestClaimant { leader, smallest } => {
                write!(f, "elected {leader} although {smallest} also claimed")
            }
        }
    }
}

/// The post-hoc election verdict.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ElectionCheck {
    violations: Vec<ElectionViolation>,
}

impl ElectionCheck {
    /// `true` when the election guarantees held.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// All violations found.
    pub fn violations(&self) -> &[ElectionViolation] {
        &self.violations
    }
}

impl fmt::Display for ElectionCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ok() {
            return write!(f, "election guarantees hold");
        }
        writeln!(f, "{} election violation(s):", self.violations.len())?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

/// Re-checks an election outcome: agreement and completeness among live
/// nodes, the leader being a real claimant, and — when no node crashed —
/// minimality of the elected id.
pub fn validate_election(
    leaders: &[Option<NodeId>],
    claimants: &[NodeId],
    live: &[bool],
) -> ElectionCheck {
    let mut check = ElectionCheck::default();
    let mut agreed: Option<(NodeId, NodeId)> = None; // (node, its leader)
    for (i, leader) in leaders.iter().enumerate() {
        if !live[i] {
            continue;
        }
        let node = NodeId::new(i);
        match (leader, agreed) {
            (None, _) => check
                .violations
                .push(ElectionViolation::MissingLeader { node }),
            (Some(l), None) => agreed = Some((node, *l)),
            (Some(l), Some((first, first_leader))) => {
                if *l != first_leader {
                    check
                        .violations
                        .push(ElectionViolation::LeaderDisagreement { a: first, b: node });
                }
            }
        }
    }
    if let Some((_, leader)) = agreed {
        if !claimants.contains(&leader) {
            check
                .violations
                .push(ElectionViolation::PhantomLeader { leader });
        }
        if live.iter().all(|&l| l) {
            if let Some(&smallest) = claimants.iter().min() {
                if smallest < leader {
                    check
                        .violations
                        .push(ElectionViolation::NotTheSmallestClaimant { leader, smallest });
                }
            }
        }
    }
    check
}

/// Result of one election execution.
#[derive(Clone, Debug)]
pub struct ElectionReport {
    /// Per-node elected leader (`None` for nodes that heard nothing, e.g.
    /// crashed early).
    pub leaders: Vec<Option<NodeId>>,
    /// Nodes whose back-off fired before any claim reached them, in id
    /// order — the protocol's message-complexity driver.
    pub claimants: Vec<NodeId>,
    /// Per-node liveness at the end of the run.
    pub live: Vec<bool>,
    /// The instant the last node adopted its final leader — the
    /// convergence time.
    pub convergence: Option<Time>,
    /// Simulated time when the run stopped.
    pub end_time: Time,
    /// Why the run stopped.
    pub outcome: RunOutcome,
    /// MAC-level event counters.
    pub counters: Counters,
    /// The election-level verdict ([`validate_election`]).
    pub check: ElectionCheck,
    /// MAC-model trace validation, when requested.
    pub validation: Option<ValidationReport>,
    /// Peak-memory statistics of the streaming validator, when validation
    /// ran.
    pub validator_stats: Option<OnlineStats>,
    /// The recorded MAC trace, when requested.
    pub trace: Option<Trace>,
    /// Per-shard execution statistics when the run was sharded
    /// ([`RunOptions::shards`] ≥ 1), `None` for sequential runs.
    pub shard_stats: Option<amac_sim::ShardStats>,
    /// Deterministic sim-time metrics when [`RunOptions::metrics`] was
    /// set (with the shard diagnostics side channel attached on sharded
    /// runs).
    pub metrics: Option<amac_obs::MetricsReport>,
}

impl ElectionReport {
    /// The elected leader, when the election succeeded.
    pub fn leader(&self) -> Option<NodeId> {
        if !self.check.is_ok() {
            return None;
        }
        self.leaders.iter().flatten().next().copied()
    }

    /// `true` when every live node elected the same valid leader and (if
    /// validated) the MAC trace conformed to the model.
    pub fn ok(&self) -> bool {
        self.check.is_ok()
            && self.convergence.is_some()
            && self
                .validation
                .as_ref()
                .map_or(true, amac_mac::ValidationReport::is_ok)
    }

    /// Convergence time in ticks.
    ///
    /// # Panics
    ///
    /// Panics if no node ever adopted a leader.
    pub fn convergence_ticks(&self) -> u64 {
        self.convergence
            .expect("election never adopted any leader")
            .ticks()
    }

    /// Number of election violations plus MAC-trace violations — the
    /// quantity the `election` experiment aggregates (its mean must be
    /// exactly 0).
    pub fn violation_count(&self) -> usize {
        self.check.violations().len() + self.validation.as_ref().map_or(0, |v| v.violations().len())
    }
}

impl fmt::Display for ElectionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.leader() {
            Some(l) => write!(f, "elected {l}")?,
            None => write!(f, "no agreed leader")?,
        }
        write!(
            f,
            "; {} claimant(s) over {} node(s), {}",
            self.claimants.len(),
            self.leaders.len(),
            self.check
        )
    }
}

/// Runs one election over `dual`: per-node back-offs drawn uniformly from
/// `[0, window)` out of `SimRng::seed(seed).split(node)`, execution run to
/// quiescence (or the options' horizon), outcome re-checked post hoc.
///
/// # Panics
///
/// Panics unless `config` is the enhanced variant (back-off needs timers)
/// and `window` is at least one tick.
pub fn run_election<P: Policy>(
    dual: &DualGraph,
    config: MacConfig,
    window: Duration,
    seed: u64,
    faults: FaultPlan,
    policy: P,
    options: &RunOptions,
) -> ElectionReport {
    assert!(
        window.ticks() >= 1,
        "back-off window must be at least 1 tick"
    );
    let root = SimRng::seed(seed);
    let backoffs: Vec<Duration> = (0..dual.len())
        .map(|i| {
            let mut rng = root.split(i as u64);
            Duration::from_ticks(rng.below(window.ticks()))
        })
        .collect();
    run_election_with_backoffs(dual, config, &backoffs, faults, policy, options)
}

/// Runs one election with *explicit* per-node back-offs instead of seeded
/// draws — the entry point `amac-check` uses to enumerate the protocol's
/// own nondeterminism (each back-off becomes a checker choice) alongside
/// the scheduler's.
///
/// # Panics
///
/// Panics unless `config` is the enhanced variant (back-off needs timers)
/// and `backoffs` has one entry per node.
pub fn run_election_with_backoffs<P: Policy>(
    dual: &DualGraph,
    config: MacConfig,
    backoffs: &[Duration],
    faults: FaultPlan,
    policy: P,
    options: &RunOptions,
) -> ElectionReport {
    assert!(
        config.is_enhanced(),
        "election back-off needs timers: use MacConfig::enhanced()"
    );
    let n = dual.len();
    assert_eq!(backoffs.len(), n, "one back-off per node");
    let nodes = backoffs.iter().map(|&b| ElectionNode::new(b)).collect();
    let recorder_store = amac_core::attach_recorder(options, dual, config, Some(&faults));
    let mut rt = Runtime::new(dual.clone(), config, nodes, policy);
    if options.shards > 0 {
        rt = rt.with_shards(options.shards);
        if options.shard_threads > 0 {
            rt = rt.with_shard_threads(options.shard_threads);
        }
    }
    let mut rt = rt.with_faults(faults);
    let validator = options
        .validate
        .then(|| rt.attach(OnlineValidator::new(dual.clone(), config)));
    let tracer = options.keep_trace.then(|| rt.attach(TraceObserver::new()));
    let recorder = recorder_store.map(|store| rt.attach(store));
    let metrics = amac_core::make_metrics(options, config).map(|m| rt.attach(m));
    let spans = amac_core::make_spans(options, dual).map(|s| rt.attach(s));
    if options.metrics {
        rt.enable_shard_profiling();
    }

    let mut convergence: Option<Time> = None;
    let outcome = loop {
        let step_outcome = rt.run_until_next(options.horizon);
        for rec in rt.drain_outputs() {
            // Adoptions only improve, so the last one is the convergence
            // instant.
            convergence = Some(rec.time);
        }
        if let Some(o) = step_outcome {
            break o;
        }
    };

    let leaders: Vec<Option<NodeId>> = (0..n).map(|i| rt.node(NodeId::new(i)).leader()).collect();
    let claimants: Vec<NodeId> = (0..n)
        .map(NodeId::new)
        .filter(|&i| rt.node(i).initiated())
        .collect();
    let live: Vec<bool> = (0..n).map(|i| !rt.is_crashed(NodeId::new(i))).collect();
    let check = validate_election(&leaders, &claimants, &live);
    let mut validator_stats = None;
    let validation = validator.map(|handle| {
        let validator = rt.detach(handle);
        validator_stats = Some(validator.stats());
        validator.into_report(outcome == RunOutcome::Idle)
    });
    let trace = tracer.map(|handle| rt.detach(handle).into_trace());
    if let Some(handle) = recorder {
        amac_core::finish_recorder(rt.detach(handle), outcome == RunOutcome::Idle);
    }
    let metrics = metrics.map(|handle| {
        rt.detach(handle)
            .into_report()
            .with_shard_diagnostics(rt.shard_stats(), rt.shard_profile())
    });
    if let (Some(handle), Some(path)) = (spans, options.chrome_trace.as_deref()) {
        amac_core::finish_spans(&rt.detach(handle), path);
    }

    ElectionReport {
        leaders,
        claimants,
        live,
        convergence,
        end_time: rt.now(),
        outcome,
        counters: rt.counters(),
        check,
        validation,
        validator_stats,
        trace,
        shard_stats: rt.shard_stats(),
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amac_graph::generators;
    use amac_mac::policies::{EagerPolicy, LazyPolicy, RandomPolicy};

    fn cfg() -> MacConfig {
        MacConfig::from_ticks(2, 12).enhanced()
    }

    fn line_dual(n: usize) -> DualGraph {
        DualGraph::reliable(generators::line(n).unwrap())
    }

    #[test]
    fn every_node_elects_the_smallest_claimant() {
        for seed in 0..10u64 {
            let report = run_election(
                &line_dual(12),
                cfg(),
                Duration::from_ticks(30),
                seed,
                FaultPlan::new(),
                LazyPolicy::new(),
                &RunOptions::default(),
            );
            assert!(report.ok(), "seed {seed}: {report}");
            let leader = report.leader().unwrap();
            assert_eq!(
                Some(&leader),
                report.claimants.iter().min(),
                "seed {seed}: smallest claimant wins"
            );
            assert!(!report.claimants.is_empty());
        }
    }

    #[test]
    fn suppression_keeps_the_claimant_count_low() {
        // A tiny flood time relative to the window: the first claim
        // reaches everyone long before most back-offs fire.
        let report = run_election(
            &DualGraph::reliable(generators::complete(16).unwrap()),
            cfg(),
            Duration::from_ticks(200),
            3,
            FaultPlan::new(),
            EagerPolicy::new(),
            &RunOptions::default(),
        );
        assert!(report.ok(), "{report}");
        assert!(
            report.claimants.len() <= 3,
            "flooding should suppress most claims, got {}",
            report.claimants.len()
        );
    }

    #[test]
    fn election_survives_crashes_that_keep_g_connected() {
        // Crash two interior nodes of a complete graph mid-election: the
        // live rest still agrees.
        let n = 10;
        let dual = DualGraph::reliable(generators::complete(n).unwrap());
        for seed in 0..10u64 {
            let faults = FaultPlan::new()
                .crash_at(NodeId::new(4), Time::from_ticks(seed % 7))
                .crash_at(NodeId::new(7), Time::from_ticks(3 + seed % 11));
            let report = run_election(
                &dual,
                cfg(),
                Duration::from_ticks(40),
                seed,
                faults,
                RandomPolicy::new(seed),
                &RunOptions::default(),
            );
            assert!(report.ok(), "seed {seed}: {report}");
        }
    }

    #[test]
    fn recovered_node_rejoins_and_agrees() {
        // Node 5 is out for the entire election and recovers long after
        // the flood quiesced: its re-armed back-off fires, it claims
        // itself, and the challenge-response of its neighbors (or its own
        // smaller id winning) pulls everyone to one leader again.
        let n = 8;
        let dual = DualGraph::reliable(generators::complete(n).unwrap());
        for seed in 0..10u64 {
            let faults = FaultPlan::new()
                .crash_at(NodeId::new(5), Time::ZERO)
                .recover_at(NodeId::new(5), Time::from_ticks(200));
            let report = run_election(
                &dual,
                cfg(),
                Duration::from_ticks(30),
                seed,
                faults,
                EagerPolicy::new(),
                &RunOptions::default(),
            );
            assert!(report.ok(), "seed {seed}: {report}");
            assert_eq!(
                report.leaders[5], report.leaders[0],
                "seed {seed}: the late-comer must converge to the same leader"
            );
            assert_eq!(report.violation_count(), 0);
        }
    }

    #[test]
    fn convergence_is_bounded_by_window_plus_flood_time() {
        let n = 16;
        let report = run_election(
            &line_dual(n),
            cfg(),
            Duration::from_ticks(20),
            5,
            FaultPlan::new(),
            LazyPolicy::new(),
            &RunOptions::default(),
        );
        assert!(report.ok(), "{report}");
        // Generous O(window + D * F_ack) sanity bound.
        let bound = 20 + (n as u64) * 12 * 2;
        assert!(
            report.convergence_ticks() <= bound,
            "converged at {} > bound {bound}",
            report.convergence_ticks()
        );
    }

    #[test]
    fn validator_flags_phantom_and_split_leaders() {
        let leaders = vec![Some(NodeId::new(2)), Some(NodeId::new(3)), None];
        let claimants = vec![NodeId::new(3)];
        let live = vec![true, true, true];
        let check = validate_election(&leaders, &claimants, &live);
        assert!(check
            .violations()
            .iter()
            .any(|v| matches!(v, ElectionViolation::LeaderDisagreement { .. })));
        assert!(check
            .violations()
            .iter()
            .any(|v| matches!(v, ElectionViolation::MissingLeader { .. })));
        assert!(check
            .violations()
            .iter()
            .any(|v| matches!(v, ElectionViolation::PhantomLeader { .. })));
        let minimality = validate_election(
            &[Some(NodeId::new(1)), Some(NodeId::new(1))],
            &[NodeId::new(0), NodeId::new(1)],
            &[true, true],
        );
        assert!(minimality
            .violations()
            .iter()
            .any(|v| matches!(v, ElectionViolation::NotTheSmallestClaimant { .. })));
    }
}
