//! # amac — multi-message broadcast with abstract MAC layers and unreliable links
//!
//! A full Rust reproduction of *"Multi-Message Broadcast with Abstract MAC
//! Layers and Unreliable Links"* (Ghaffari, Kantor, Lynch, Newport,
//! PODC 2014; arXiv:1405.1671): the dual-graph network model, the standard
//! and enhanced abstract MAC layers with adversarial message schedulers,
//! the BMMB and FMMB algorithms, the Section 3.3 lower-bound
//! constructions, and an experiment harness regenerating every cell of the
//! paper's Figure 1.
//!
//! This facade crate re-exports the workspace layers:
//!
//! * [`graph`] — dual graphs `(G, G′)`, grey-zone embeddings, topology
//!   generators ([`amac_graph`]);
//! * [`sim`] — deterministic discrete-event substrate ([`amac_sim`]);
//! * [`mac`] — the abstract MAC layer runtime, scheduler policies, and the
//!   model-conformance validator ([`amac_mac`]);
//! * [`store`] — durable trace store: versioned on-disk event format and
//!   deterministic replay ([`amac_store`]);
//! * [`obs`] — deterministic observability: sim-time metric histograms,
//!   Chrome-trace span timelines, shard self-profiling ([`amac_obs`]);
//! * [`core`] — the MMB problem, BMMB, FMMB, and bound formulas
//!   ([`amac_core`]);
//! * [`lower`] — executable lower bounds ([`amac_lower`]);
//! * [`proto`] — protocol services layered on the MAC abstraction:
//!   crash-tolerant consensus and leader election ([`amac_proto`]);
//! * [`mod@bench`] — parameter sweeps, fits, and table rendering for the
//!   Figure 1 reproduction ([`amac_bench`]);
//! * [`check`] — bounded exhaustive model checking of the runtime's
//!   schedule space with counterexample shrinking ([`amac_check`]).
//!
//! ## Quickstart
//!
//! ```
//! use amac::core::{run_bmmb, Assignment, RunOptions};
//! use amac::graph::{generators, DualGraph, NodeId};
//! use amac::mac::{policies::LazyPolicy, MacConfig};
//!
//! let dual = DualGraph::reliable(generators::line(10)?);
//! let report = run_bmmb(
//!     &dual,
//!     MacConfig::from_ticks(2, 40),
//!     &Assignment::all_at(NodeId::new(0), 2),
//!     LazyPolicy::new().prefer_duplicates(),
//!     &RunOptions::default(),
//! );
//! assert!(report.solved_and_valid());
//! # Ok::<(), amac::graph::GraphError>(())
//! ```
//!
//! See the `examples/` directory for runnable scenarios and `amac-bench`
//! for the paper-table reproduction harness.

/// Dual-graph network substrate (re-export of [`amac_graph`]).
pub use amac_graph as graph;

/// Deterministic discrete-event simulation substrate (re-export of
/// [`amac_sim`]).
pub use amac_sim as sim;

/// The abstract MAC layer: runtime, policies, validator (re-export of
/// [`amac_mac`]).
pub use amac_mac as mac;

/// Durable trace store: on-disk event format, recording observer, and
/// deterministic replay (re-export of [`amac_store`]).
pub use amac_store as store;

/// Deterministic observability: sim-time metric histograms, span
/// timelines, shard self-profiling (re-export of [`amac_obs`]).
pub use amac_obs as obs;

/// MMB problem and algorithms: BMMB, FMMB, bounds (re-export of
/// [`amac_core`]).
pub use amac_core as core;

/// Executable lower-bound constructions (re-export of [`amac_lower`]).
pub use amac_lower as lower;

/// Protocol services on the abstract MAC layer: crash-tolerant consensus
/// and leader election (re-export of [`amac_proto`]).
pub use amac_proto as proto;

/// Experiment harness for the Figure 1 reproduction (re-export of
/// [`amac_bench`]).
pub use amac_bench as bench;

/// Bounded exhaustive model checker over the runtime's nondeterminism
/// (re-export of [`amac_check`]).
pub use amac_check as check;
