//! Integration: BMMB solves MMB across topologies and schedulers, within
//! the paper's bounds, with every execution validated against the MAC
//! model.

use amac::core::{bounds, run_bmmb, Assignment, RunOptions};
use amac::graph::{generators, DualGraph, NodeId};
use amac::mac::policies::{EagerPolicy, LazyPolicy, RandomPolicy};
use amac::mac::MacConfig;
use amac::sim::SimRng;

fn cfg() -> MacConfig {
    MacConfig::from_ticks(2, 40)
}

#[test]
fn bmmb_solves_on_every_classic_topology() {
    let topologies: Vec<(&str, amac::graph::Graph)> = vec![
        ("line", generators::line(24).unwrap()),
        ("ring", generators::ring(24).unwrap()),
        ("grid", generators::grid(4, 6).unwrap()),
        ("star", generators::star(24).unwrap()),
        ("tree", generators::tree(24, 2).unwrap()),
        ("barbell", generators::barbell(8, 8).unwrap()),
        ("complete", generators::complete(12).unwrap()),
    ];
    for (name, g) in topologies {
        let n = g.len();
        let dual = DualGraph::reliable(g);
        let assignment = Assignment::all_at(NodeId::new(0), 3);
        let report = run_bmmb(
            &dual,
            cfg(),
            &assignment,
            LazyPolicy::new().prefer_duplicates(),
            &RunOptions::default(),
        );
        assert!(report.solved_and_valid(), "{name}: {report}");
        assert_eq!(
            report.deliveries,
            3 * n,
            "{name}: one delivery per (msg, node)"
        );
    }
}

#[test]
fn bmmb_solves_under_every_scheduler() {
    let g = generators::grid(5, 5).unwrap();
    let mut rng = SimRng::seed(1);
    let dual = generators::r_restricted_augment(g, 3, 0.4, &mut rng).unwrap();
    let assignment = Assignment::random(25, 5, &mut rng);

    let eager = run_bmmb(
        &dual,
        cfg(),
        &assignment,
        EagerPolicy::new(),
        &RunOptions::default(),
    );
    assert!(eager.solved_and_valid(), "eager: {eager}");

    let leaky = run_bmmb(
        &dual,
        cfg(),
        &assignment,
        EagerPolicy::new().with_unreliable(1.0, 3),
        &RunOptions::default(),
    );
    assert!(leaky.solved_and_valid(), "eager+unreliable: {leaky}");

    let lazy = run_bmmb(
        &dual,
        cfg(),
        &assignment,
        LazyPolicy::new().prefer_duplicates(),
        &RunOptions::default(),
    );
    assert!(lazy.solved_and_valid(), "lazy: {lazy}");

    for seed in 0..5 {
        let random = run_bmmb(
            &dual,
            cfg(),
            &assignment,
            RandomPolicy::new(seed),
            &RunOptions::default(),
        );
        assert!(random.solved_and_valid(), "random({seed}): {random}");
    }
}

#[test]
fn theorem_316_exact_deadline_across_r() {
    // The Theorem 3.16 deadline t1 (at the effective integer-tick progress
    // constant F_prog + 1) upper-bounds every measured completion.
    let config = cfg();
    let effective = MacConfig::from_ticks(config.f_prog().ticks() + 1, config.f_ack().ticks());
    for r in [1usize, 2, 4, 8] {
        for k in [1usize, 3, 6] {
            let d = 20;
            let g = generators::line(d + 1).unwrap();
            let mut rng = SimRng::seed((r * 100 + k) as u64);
            let dual = generators::r_restricted_augment(g, r, 0.5, &mut rng).unwrap();
            let assignment = Assignment::all_at(NodeId::new(0), k);
            let report = run_bmmb(
                &dual,
                config,
                &assignment,
                LazyPolicy::new().prefer_duplicates(),
                &RunOptions::default(),
            );
            assert!(report.solved_and_valid(), "r={r} k={k}: {report}");
            let t1 = bounds::bmmb_r_restricted_exact(d, k, r, &effective).ticks();
            assert!(
                report.completion_ticks() <= t1,
                "r={r} k={k}: measured {} exceeds exact t1 = {t1}",
                report.completion_ticks()
            );
        }
    }
}

#[test]
fn arbitrary_g_prime_upper_bound_holds() {
    // Theorem 3.1: O((D+k) * F_ack) for arbitrary G'.
    for (d, k) in [(16usize, 2usize), (32, 4), (24, 8)] {
        let g = generators::line(d + 1).unwrap();
        let dual = generators::long_range_augment(g, d / 2).unwrap();
        let assignment = Assignment::all_at(NodeId::new(0), k);
        let report = run_bmmb(
            &dual,
            cfg(),
            &assignment,
            LazyPolicy::new().prefer_duplicates(),
            &RunOptions::default(),
        );
        assert!(report.solved_and_valid(), "D={d} k={k}: {report}");
        let bound = bounds::bmmb_arbitrary(d, k, &cfg()).ticks();
        assert!(
            report.completion_ticks() <= 2 * bound,
            "D={d} k={k}: {} > 2x bound {bound}",
            report.completion_ticks()
        );
    }
}

#[test]
fn disconnected_networks_complete_per_component() {
    // Two components; messages start in each; completion is per-component.
    let g = amac::graph::Graph::from_edges(
        12,
        (0..5)
            .map(|i| (i, i + 1))
            .chain((6..11).map(|i| (i, i + 1))),
    )
    .unwrap();
    let dual = DualGraph::reliable(g);
    let assignment = Assignment::singleton([NodeId::new(0), NodeId::new(6)]);
    let report = run_bmmb(
        &dual,
        cfg(),
        &assignment,
        LazyPolicy::new(),
        &RunOptions::default(),
    );
    assert!(report.solved_and_valid(), "{report}");
    // 6 deliveries per message (its own component only).
    assert_eq!(report.deliveries, 12);
}

#[test]
fn online_arrivals_are_also_solved() {
    // The paper's footnote-4 variant: messages arriving mid-execution.
    use amac::core::{Bmmb, CompletionTracker, Delivered, MessageId, MmbMessage};
    use amac::mac::Runtime;
    use amac::sim::Time;

    let dual = DualGraph::reliable(generators::line(10).unwrap());
    let nodes = (0..10).map(|_| Bmmb::new()).collect();
    let mut rt = Runtime::new(dual.clone(), cfg(), nodes, LazyPolicy::new()).tracing();
    let m0 = MmbMessage {
        id: MessageId(0),
        origin: NodeId::new(0),
    };
    let m1 = MmbMessage {
        id: MessageId(1),
        origin: NodeId::new(9),
    };
    rt.inject(NodeId::new(0), m0);
    rt.inject_at(Time::from_ticks(100), NodeId::new(9), m1);
    rt.run();

    let assignment = Assignment::new([
        (NodeId::new(0), MessageId(0)),
        (NodeId::new(9), MessageId(1)),
    ]);
    let mut tracker = CompletionTracker::new(&dual, &assignment);
    for rec in rt.outputs() {
        let Delivered(id) = rec.out;
        tracker.record(rec.time, rec.node, id);
    }
    assert!(tracker.is_complete(), "{} missing", tracker.remaining());
    let report = amac::mac::validate(rt.trace().unwrap(), &dual, rt.config(), true);
    assert!(report.is_ok(), "{report}");
}
