//! Workspace smoke test: the facade re-exports resolve and the
//! `examples/quickstart.rs` path — generate a network, run BMMB under an
//! adversarial scheduler, validate against the MAC model — works end to end
//! on a small line graph.

use amac::core::{bounds, run_bmmb, Assignment, RunOptions};
use amac::graph::{generators, DualGraph, NodeId};
use amac::mac::{policies::LazyPolicy, MacConfig};
use amac::sim::SimRng;

/// Every facade re-export must resolve to the workspace crate behind it.
/// Referencing one item per layer makes a missing or misrouted re-export a
/// compile error of this test.
#[test]
fn facade_reexports_resolve() {
    let _graph: fn(usize) -> Result<amac::graph::Graph, amac::graph::GraphError> =
        amac::graph::generators::line;
    let _sim: amac::sim::SimRng = amac::sim::SimRng::seed(0);
    let _mac: amac::mac::MacConfig = amac::mac::MacConfig::from_ticks(1, 2);
    let _core: amac::core::Assignment = amac::core::Assignment::all_at(NodeId::new(0), 1);
    let _lower: &str = core::any::type_name::<amac::lower::LowerBoundReport>();
    let _bench: fn() -> amac::bench::experiments::fig1_gg::Fig1Gg =
        amac::bench::experiments::fig1_gg::run_smoke;
}

/// The quickstart flow on a 10-node line: 2 messages from node 0, lazy
/// duplicate-feeding scheduler, full model validation, and the Theorem 3.2
/// style bound check.
#[test]
fn quickstart_runs_end_to_end_on_a_line() {
    let g = generators::line(10).expect("line(10)");
    let mut rng = SimRng::seed(42);
    let dual = generators::r_restricted_augment(g, 2, 0.4, &mut rng).expect("augment");

    let config = MacConfig::from_ticks(3, 48);
    let assignment = Assignment::all_at(NodeId::new(0), 2);
    let report = run_bmmb(
        &dual,
        config,
        &assignment,
        LazyPolicy::new().prefer_duplicates(),
        &RunOptions::default(),
    );

    assert!(report.solved_and_valid(), "{report}");
    // Every node must receive every message: 2 messages x 10 nodes.
    assert_eq!(report.deliveries, 2 * dual.len());
    // Generous constant over the paper's O(.) bound, as in the doc example.
    let bound = bounds::bmmb_arbitrary(dual.diameter().max(1), 2, &config).ticks();
    assert!(
        report.completion_ticks() <= 4 * bound,
        "completion {} far above bound {bound}",
        report.completion_ticks()
    );
}

/// The reliable-only path from the crate-level doc example, verbatim.
#[test]
fn doc_example_reliable_line() {
    let dual = DualGraph::reliable(generators::line(10).expect("line(10)"));
    let report = run_bmmb(
        &dual,
        MacConfig::from_ticks(2, 40),
        &Assignment::all_at(NodeId::new(0), 2),
        LazyPolicy::new().prefer_duplicates(),
        &RunOptions::default(),
    );
    assert!(report.solved_and_valid());
}
