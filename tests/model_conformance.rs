//! Integration: the execution validator accepts every runtime-produced
//! execution and rejects injected faults — our mechanical substitute for
//! the paper's model-conformance proofs.

use amac::core::{Bmmb, MessageId, MmbMessage};
use amac::graph::{generators, DualGraph, NodeId};
use amac::mac::policies::{EagerPolicy, LazyPolicy, RandomPolicy};
use amac::mac::trace::{Trace, TraceKind};
use amac::mac::{validate, InstanceId, MacConfig, MessageKey, OnlineValidator, Runtime, Violation};
use amac::sim::{SimRng, Time};

fn run_and_validate(dual: DualGraph, cfg: MacConfig, policy: impl amac::mac::Policy, k: usize) {
    let n = dual.len();
    let nodes = (0..n).map(|_| Bmmb::new()).collect();
    let mut rt = Runtime::new(dual.clone(), cfg, nodes, policy).tracing();
    let online = rt.attach(OnlineValidator::new(dual.clone(), cfg));
    for i in 0..k {
        rt.inject(
            NodeId::new(i % n),
            MmbMessage {
                id: MessageId(i as u64),
                origin: NodeId::new(i % n),
            },
        );
    }
    rt.run();
    let report = validate(rt.trace().unwrap(), &dual, rt.config(), true);
    assert!(report.is_ok(), "{report}");
    // The streaming validator, fed the same execution live, agrees.
    let online = rt.detach(online).into_report(true);
    assert!(online.is_ok(), "online: {online}");
}

#[test]
fn all_policies_produce_valid_executions_on_many_topologies() {
    let mut rng = SimRng::seed(77);
    let configs = [
        MacConfig::from_ticks(1, 1),
        MacConfig::from_ticks(1, 10),
        MacConfig::from_ticks(4, 17),
        MacConfig::from_ticks(8, 256),
    ];
    for cfg in configs {
        for k in [1usize, 4] {
            run_and_validate(
                DualGraph::reliable(generators::line(12).unwrap()),
                cfg,
                LazyPolicy::new().prefer_duplicates(),
                k,
            );
            run_and_validate(
                generators::r_restricted_augment(generators::grid(3, 4).unwrap(), 2, 0.5, &mut rng)
                    .unwrap(),
                cfg,
                RandomPolicy::new(k as u64),
                k,
            );
            run_and_validate(
                generators::long_range_augment(generators::line(14).unwrap(), 5).unwrap(),
                cfg,
                EagerPolicy::new().with_unreliable(0.7, 9),
                k,
            );
        }
    }
}

#[test]
fn grey_zone_adversary_runs_are_valid() {
    // The specialized Fig 2 adversary stays within the model too.
    let net = generators::dual_line(12).unwrap();
    let cfg = MacConfig::from_ticks(3, 30);
    let nodes = (0..net.dual.len()).map(|_| Bmmb::new()).collect();
    let adversary = amac::lower::GreyZoneAdversary::new(12, MessageKey(0), MessageKey(1));
    let mut rt = Runtime::new(net.dual.clone(), cfg, nodes, adversary).tracing();
    rt.inject(
        net.a(1),
        MmbMessage {
            id: MessageId(0),
            origin: net.a(1),
        },
    );
    rt.inject(
        net.b(1),
        MmbMessage {
            id: MessageId(1),
            origin: net.b(1),
        },
    );
    rt.run();
    let report = validate(rt.trace().unwrap(), &net.dual, rt.config(), true);
    assert!(report.is_ok(), "{report}");
}

// ---------------------------------------------------------------------
// Fault injection: hand-built invalid traces must be rejected.
// ---------------------------------------------------------------------

fn base_cfg() -> MacConfig {
    MacConfig::from_ticks(2, 10)
}

fn line3() -> DualGraph {
    DualGraph::reliable(generators::line(3).unwrap())
}

fn key(i: u64) -> MessageKey {
    MessageKey(i)
}

#[test]
fn fault_missing_reliable_delivery_rejected() {
    let mut tr = Trace::new();
    tr.push(
        Time::ZERO,
        InstanceId::new(0),
        NodeId::new(1),
        TraceKind::Bcast,
        key(0),
    );
    // Node 1 has reliable neighbors 0 and 2; only 0 is served.
    tr.push(
        Time::from_ticks(1),
        InstanceId::new(0),
        NodeId::new(0),
        TraceKind::Rcv,
        key(0),
    );
    tr.push(
        Time::from_ticks(2),
        InstanceId::new(0),
        NodeId::new(1),
        TraceKind::Ack,
        key(0),
    );
    let report = validate(&tr, &line3(), &base_cfg(), true);
    assert!(report
        .violations()
        .iter()
        .any(|v| matches!(v, Violation::MissingReliableDelivery { .. })));
}

#[test]
fn fault_late_ack_rejected() {
    let mut tr = Trace::new();
    tr.push(
        Time::ZERO,
        InstanceId::new(0),
        NodeId::new(0),
        TraceKind::Bcast,
        key(0),
    );
    tr.push(
        Time::from_ticks(3),
        InstanceId::new(0),
        NodeId::new(1),
        TraceKind::Rcv,
        key(0),
    );
    tr.push(
        Time::from_ticks(99),
        InstanceId::new(0),
        NodeId::new(0),
        TraceKind::Ack,
        key(0),
    );
    let report = validate(&tr, &line3(), &base_cfg(), true);
    assert!(report
        .violations()
        .iter()
        .any(|v| matches!(v, Violation::AckBoundExceeded { .. })));
}

#[test]
fn fault_progress_starvation_rejected() {
    // Instance spans [0, 10] (within F_ack) but the receiver first hears
    // anything at t = 9: uncovered windows from t = 0.
    let cfg = MacConfig::from_ticks(2, 10);
    let mut tr = Trace::new();
    tr.push(
        Time::ZERO,
        InstanceId::new(0),
        NodeId::new(0),
        TraceKind::Bcast,
        key(0),
    );
    tr.push(
        Time::from_ticks(9),
        InstanceId::new(0),
        NodeId::new(1),
        TraceKind::Rcv,
        key(0),
    );
    tr.push(
        Time::from_ticks(10),
        InstanceId::new(0),
        NodeId::new(0),
        TraceKind::Ack,
        key(0),
    );
    let report = validate(&tr, &line3(), &cfg, true);
    assert!(report
        .violations()
        .iter()
        .any(|v| matches!(v, Violation::ProgressViolation { .. })));
}

#[test]
fn fault_delivery_to_stranger_rejected() {
    // Node 0 and node 2 are not G'-neighbors on a 3-line.
    let mut tr = Trace::new();
    tr.push(
        Time::ZERO,
        InstanceId::new(0),
        NodeId::new(0),
        TraceKind::Bcast,
        key(0),
    );
    tr.push(
        Time::from_ticks(1),
        InstanceId::new(0),
        NodeId::new(1),
        TraceKind::Rcv,
        key(0),
    );
    tr.push(
        Time::from_ticks(1),
        InstanceId::new(0),
        NodeId::new(2),
        TraceKind::Rcv,
        key(0),
    );
    tr.push(
        Time::from_ticks(2),
        InstanceId::new(0),
        NodeId::new(0),
        TraceKind::Ack,
        key(0),
    );
    let report = validate(&tr, &line3(), &base_cfg(), true);
    assert!(report.violations().iter().any(
        |v| matches!(v, Violation::RcvToNonNeighbor { receiver, .. } if *receiver == NodeId::new(2))
    ));
}

#[test]
fn fault_double_termination_rejected() {
    let mut tr = Trace::new();
    tr.push(
        Time::ZERO,
        InstanceId::new(0),
        NodeId::new(0),
        TraceKind::Bcast,
        key(0),
    );
    tr.push(
        Time::from_ticks(1),
        InstanceId::new(0),
        NodeId::new(1),
        TraceKind::Rcv,
        key(0),
    );
    tr.push(
        Time::from_ticks(2),
        InstanceId::new(0),
        NodeId::new(0),
        TraceKind::Ack,
        key(0),
    );
    tr.push(
        Time::from_ticks(3),
        InstanceId::new(0),
        NodeId::new(0),
        TraceKind::Abort,
        key(0),
    );
    let report = validate(&tr, &line3(), &base_cfg(), true);
    assert!(report
        .violations()
        .iter()
        .any(|v| matches!(v, Violation::MultipleTerminations { .. })));
}

#[test]
fn fault_overlapping_user_broadcasts_rejected() {
    let mut tr = Trace::new();
    tr.push(
        Time::ZERO,
        InstanceId::new(0),
        NodeId::new(0),
        TraceKind::Bcast,
        key(0),
    );
    tr.push(
        Time::from_ticks(1),
        InstanceId::new(1),
        NodeId::new(0),
        TraceKind::Bcast,
        key(1),
    );
    let report = validate(&tr, &line3(), &base_cfg(), false);
    assert!(report
        .violations()
        .iter()
        .any(|v| matches!(v, Violation::OverlappingBcasts { .. })));
}

#[test]
fn mutated_valid_trace_becomes_invalid() {
    // Take a real execution, drop one rcv entry: ack correctness breaks.
    let dual = line3();
    let cfg = base_cfg();
    let nodes = (0..3).map(|_| Bmmb::new()).collect::<Vec<_>>();
    let mut rt = Runtime::new(dual.clone(), cfg, nodes, EagerPolicy::new()).tracing();
    rt.inject(
        NodeId::new(0),
        MmbMessage {
            id: MessageId(0),
            origin: NodeId::new(0),
        },
    );
    rt.run();
    let good = rt.trace().unwrap().clone();
    assert!(validate(&good, &dual, &cfg, true).is_ok());

    // Rebuild the trace without the first Rcv entry.
    let mut mutated = Trace::new();
    let mut dropped = false;
    for e in good.entries() {
        if !dropped && e.kind == TraceKind::Rcv {
            dropped = true;
            continue;
        }
        mutated.push(e.time, e.instance, e.node, e.kind, e.key);
    }
    let report = validate(&mutated, &dual, &cfg, true);
    assert!(!report.is_ok(), "dropping a delivery must be caught");
}
