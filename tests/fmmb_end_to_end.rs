//! Integration: FMMB end-to-end on grey-zone networks — correctness
//! w.h.p. across seeds, F_ack independence, and model conformance in the
//! enhanced MAC layer.

use amac::core::{run_fmmb, Assignment, FmmbParams, RunOptions};
use amac::graph::generators::{connected_grey_zone_network, GreyZoneConfig};
use amac::mac::policies::{EagerPolicy, LazyPolicy, RandomPolicy};
use amac::mac::MacConfig;
use amac::sim::SimRng;

fn network(n: usize, seed: u64) -> amac::graph::generators::GreyZoneNetwork {
    let mut rng = SimRng::seed(seed);
    let side = (n as f64 / 2.0).sqrt();
    connected_grey_zone_network(&GreyZoneConfig::new(n, side).with_c(2.0), 500, &mut rng)
        .expect("connected sample")
}

#[test]
fn fmmb_whp_success_over_seed_sweep() {
    // 10 (network, algorithm-seed) pairs at n = 40: all must solve with a
    // valid MIS — matching the w.h.p. guarantee at this scale.
    let mut solved = 0;
    for seed in 0..10u64 {
        let net = network(40, 7_000 + seed);
        let mut rng = SimRng::seed(seed);
        let assignment = Assignment::random(40, 3, &mut rng);
        let params = FmmbParams::new(3, net.dual.diameter());
        let report = run_fmmb(
            &net.dual,
            MacConfig::from_ticks(2, 24).enhanced(),
            &assignment,
            &params,
            seed,
            LazyPolicy::new(),
            &RunOptions::fast().stopping_on_completion(),
        );
        if report.completion.is_some() && report.mis_valid {
            solved += 1;
        }
    }
    assert!(solved >= 9, "only {solved}/10 runs succeeded");
}

#[test]
fn fmmb_execution_validates_against_model() {
    let net = network(24, 11);
    let mut rng = SimRng::seed(2);
    let assignment = Assignment::random(24, 2, &mut rng);
    let params = FmmbParams::new(2, net.dual.diameter());
    let report = run_fmmb(
        &net.dual,
        MacConfig::from_ticks(2, 24).enhanced(),
        &assignment,
        &params,
        5,
        LazyPolicy::new(),
        &RunOptions::default(), // validation on, run to quiescence
    );
    assert!(report.solved_and_valid(), "{report}");
    let validation = report.validation.as_ref().unwrap();
    assert!(validation.is_ok(), "{validation}");
    // FMMB actually uses the abort interface (aborted round broadcasts).
    assert!(
        report.counters.get("abort") > 0,
        "rounds must abort unacked broadcasts"
    );
}

#[test]
fn fmmb_completion_is_f_ack_independent() {
    let net = network(32, 3);
    let mut rng = SimRng::seed(9);
    let assignment = Assignment::random(32, 2, &mut rng);
    let params = FmmbParams::new(2, net.dual.diameter());
    let mut times = Vec::new();
    for f_ack in [8u64, 80, 800] {
        let report = run_fmmb(
            &net.dual,
            MacConfig::from_ticks(2, f_ack).enhanced(),
            &assignment,
            &params,
            4,
            LazyPolicy::new(),
            &RunOptions::fast().stopping_on_completion(),
        );
        times.push(report.completion_ticks());
    }
    assert_eq!(times[0], times[1], "F_ack must not affect FMMB");
    assert_eq!(times[1], times[2], "F_ack must not affect FMMB");
}

#[test]
fn fmmb_succeeds_under_different_schedulers() {
    let net = network(28, 21);
    let mut rng = SimRng::seed(14);
    let assignment = Assignment::random(28, 3, &mut rng);
    let params = FmmbParams::new(3, net.dual.diameter());
    let cfg = MacConfig::from_ticks(2, 24).enhanced();
    for seed in [0u64, 1] {
        let lazy = run_fmmb(
            &net.dual,
            cfg,
            &assignment,
            &params,
            seed,
            LazyPolicy::new(),
            &RunOptions::fast().stopping_on_completion(),
        );
        assert!(
            lazy.completion.is_some() && lazy.mis_valid,
            "lazy({seed}): {lazy}"
        );
        let eager = run_fmmb(
            &net.dual,
            cfg,
            &assignment,
            &params,
            seed,
            EagerPolicy::new(),
            &RunOptions::fast().stopping_on_completion(),
        );
        assert!(
            eager.completion.is_some() && eager.mis_valid,
            "eager({seed}): {eager}"
        );
        let random = run_fmmb(
            &net.dual,
            cfg,
            &assignment,
            &params,
            seed,
            RandomPolicy::new(seed),
            &RunOptions::fast().stopping_on_completion(),
        );
        assert!(
            random.completion.is_some() && random.mis_valid,
            "random({seed}): {random}"
        );
    }
}

#[test]
fn fmmb_handles_all_messages_at_one_node() {
    let net = network(24, 33);
    let k = 5;
    let assignment = Assignment::all_at(amac::graph::NodeId::new(0), k);
    let params = FmmbParams::new(k, net.dual.diameter());
    let report = run_fmmb(
        &net.dual,
        MacConfig::from_ticks(2, 24).enhanced(),
        &assignment,
        &params,
        6,
        LazyPolicy::new(),
        &RunOptions::fast().stopping_on_completion(),
    );
    assert!(report.completion.is_some(), "{report}");
}

#[test]
fn fmmb_mis_size_bounded_by_packing() {
    // The MIS of a unit disk graph in an area A has at most ~A/(pi/4)
    // members (disjoint radius-1/2 disks); sanity-check the subroutine
    // output against a generous version of that bound.
    let n = 48;
    let net = network(n, 17);
    let side = (n as f64 / 2.0).sqrt();
    let params = FmmbParams::new(1, net.dual.diameter());
    let report = run_fmmb(
        &net.dual,
        MacConfig::from_ticks(2, 16).enhanced(),
        &Assignment::all_at(amac::graph::NodeId::new(0), 1),
        &params,
        8,
        EagerPolicy::new(),
        &RunOptions::fast().stopping_on_completion(),
    );
    assert!(report.mis_valid);
    let packing_cap = ((side + 1.0) * (side + 1.0)).ceil() as usize * 2;
    assert!(
        report.mis.len() <= packing_cap,
        "MIS size {} exceeds packing cap {packing_cap}",
        report.mis.len()
    );
}
