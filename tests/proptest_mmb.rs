//! Property-based tests on the full stack: BMMB must solve MMB and
//! validate against the MAC model on random dual graphs under random
//! schedulers — the paper's correctness theorem (Theorem 3.4) plus model
//! conformance, exercised over the instance space.

use amac::core::{bounds, run_bmmb, Assignment, MessageId, RunOptions};
use amac::graph::{generators, DualGraph, GraphBuilder, NodeId};
use amac::mac::policies::{EagerPolicy, LazyPolicy, RandomPolicy};
use amac::mac::MacConfig;
use amac::sim::SimRng;
use proptest::prelude::*;

/// Strategy: a connected random dual graph (spanning path + random extra
/// reliable and unreliable edges).
fn arb_dual() -> impl Strategy<Value = DualGraph> {
    (3usize..24, 0u64..10_000).prop_map(|(n, seed)| {
        let mut rng = SimRng::seed(seed);
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(NodeId::new(i), NodeId::new(i + 1));
        }
        for _ in 0..n / 2 {
            let u = rng.below(n as u64) as usize;
            let v = rng.below(n as u64) as usize;
            if u != v {
                let _ = b.try_add_edge_idx(u, v);
            }
        }
        let g = b.build();
        generators::arbitrary_augment(g, (n / 2).max(1), &mut rng).unwrap()
    })
}

fn arb_config() -> impl Strategy<Value = MacConfig> {
    (1u64..6, 1u64..8).prop_map(|(fp, mult)| MacConfig::from_ticks(fp, fp * mult))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bmmb_solves_and_validates_on_random_instances(
        dual in arb_dual(),
        cfg in arb_config(),
        k in 1usize..6,
        policy_seed in 0u64..100,
    ) {
        let mut rng = SimRng::seed(policy_seed);
        let assignment = Assignment::random(dual.len(), k, &mut rng);
        let report = run_bmmb(
            &dual,
            cfg,
            &assignment,
            RandomPolicy::new(policy_seed),
            &RunOptions::default(),
        );
        prop_assert!(report.solved_and_valid(), "{}", report);
        // Theorem 3.4 part (b): exactly one deliver per (message, node in
        // origin component); here G is connected so k * n deliveries.
        prop_assert_eq!(report.deliveries, k * dual.len());
    }

    #[test]
    fn bmmb_time_within_arbitrary_bound_on_random_instances(
        dual in arb_dual(),
        k in 1usize..5,
        seed in 0u64..50,
    ) {
        let cfg = MacConfig::from_ticks(2, 32);
        let mut rng = SimRng::seed(seed);
        let assignment = Assignment::random(dual.len(), k, &mut rng);
        let report = run_bmmb(
            &dual,
            cfg,
            &assignment,
            LazyPolicy::new().prefer_duplicates(),
            &RunOptions::fast(),
        );
        let bound = bounds::bmmb_arbitrary(dual.diameter().max(1), k, &cfg).ticks();
        // Generous constant: Theorem 3.1 is asymptotic.
        prop_assert!(
            report.completion_ticks() <= 4 * bound,
            "measured {} vs bound {bound}",
            report.completion_ticks()
        );
    }

    #[test]
    fn eager_never_slower_than_lazy(
        dual in arb_dual(),
        k in 1usize..4,
        seed in 0u64..50,
    ) {
        let cfg = MacConfig::from_ticks(2, 24);
        let mut rng = SimRng::seed(seed);
        let assignment = Assignment::random(dual.len(), k, &mut rng);
        let eager = run_bmmb(&dual, cfg, &assignment, EagerPolicy::new(), &RunOptions::fast());
        let lazy = run_bmmb(
            &dual,
            cfg,
            &assignment,
            LazyPolicy::new().prefer_duplicates(),
            &RunOptions::fast(),
        );
        prop_assert!(eager.completion_ticks() <= lazy.completion_ticks());
    }

    #[test]
    fn runs_are_deterministic_given_seeds(
        dual in arb_dual(),
        k in 1usize..4,
        seed in 0u64..50,
    ) {
        let cfg = MacConfig::from_ticks(2, 24);
        let mut rng_a = SimRng::seed(seed);
        let a1 = Assignment::random(dual.len(), k, &mut rng_a);
        let mut rng_b = SimRng::seed(seed);
        let a2 = Assignment::random(dual.len(), k, &mut rng_b);
        prop_assert_eq!(&a1, &a2);
        let r1 = run_bmmb(&dual, cfg, &a1, RandomPolicy::new(seed), &RunOptions::fast());
        let r2 = run_bmmb(&dual, cfg, &a2, RandomPolicy::new(seed), &RunOptions::fast());
        prop_assert_eq!(r1.completion_ticks(), r2.completion_ticks());
        prop_assert_eq!(r1.instances, r2.instances);
    }

    #[test]
    fn duplicate_arrivals_of_distinct_ids_all_delivered(
        n in 3usize..15,
        seed in 0u64..40,
    ) {
        // All k messages at the same node (maximum queue contention).
        let dual = DualGraph::reliable(generators::line(n).unwrap());
        let k = 4;
        let assignment = Assignment::new(
            (0..k as u64).map(|i| (NodeId::new(0), MessageId(i))),
        );
        let report = run_bmmb(
            &dual,
            MacConfig::from_ticks(2, 16),
            &assignment,
            RandomPolicy::new(seed),
            &RunOptions::default(),
        );
        prop_assert!(report.solved_and_valid(), "{}", report);
    }
}
