//! Committed counterexample fixtures replay forever.
//!
//! `tests/fixtures/` holds minimized `.amactrace` counterexamples emitted
//! by the `amac-check` explorer (regenerate with
//! `repro check consensus --broken --fixture <path>`; see
//! `docs/CHECKING.md`). Each must keep replaying to the *same* violation
//! from the stored bytes alone — the durable proof that the bug the
//! checker found is real and stays reproducible without re-running the
//! search.

use amac::check::check_fixture;
use std::path::Path;

/// The agreement violation of the under-provisioned consensus (one phase
/// against a 1-crash budget, n = 3): minimized schedule `[0, 1, 0, 0, 1]`
/// — crash node 0 after it delivered its `false` estimate to node 1 but
/// not to node 2.
#[test]
fn broken_consensus_fixture_reproduces_agreement_violation() {
    let path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/broken_consensus_n3.amactrace");
    let check = check_fixture(&path).expect("committed fixture must decode");
    assert_eq!(
        check.mac_violations, 0,
        "the runtime honored the MAC guarantees throughout — the bug is the protocol's"
    );
    assert_eq!(
        check.estimate_verdict.as_deref(),
        Some("n1 decided false but n2 decided true (agreement)"),
        "stored stream must reconstruct the original disagreement"
    );
    assert!(!check.is_clean());
}

/// The live explorer still finds and shrinks the same class of violation
/// the committed fixture memorializes (guards against the fixture and the
/// checker silently drifting apart).
#[test]
fn explorer_still_finds_the_committed_violation() {
    use amac::check::{explore, Bounds, ConsensusScenario, PROP_CONSENSUS};
    let report = explore(&ConsensusScenario::broken(3), &Bounds::default(), None);
    let cx = report.counterexample.expect("broken consensus must fail");
    assert_eq!(cx.property, PROP_CONSENSUS);
    assert!(cx.detail.contains("agreement"));
}
