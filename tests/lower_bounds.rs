//! Integration: the Section 3.3 lower-bound constructions force their
//! claimed delays against BMMB, and those delays scale with `F_ack` —
//! establishing the `Θ((D+k)·F_ack)` cell of Figure 1 together with the
//! upper-bound tests.

use amac::core::RunOptions;
use amac::lower::{run_choke_star, run_dual_line};
use amac::mac::MacConfig;

#[test]
fn choke_star_ratio_approaches_one() {
    let cfg = MacConfig::from_ticks(2, 64);
    let mut last = 0.0;
    for k in [4, 8, 16, 32] {
        let r = run_choke_star(k, cfg, &RunOptions::default());
        assert!(r.run.solved_and_valid(), "k={k}: {}", r.run);
        assert!(r.ratio >= 0.6, "k={k}: ratio {:.2}", r.ratio);
        last = r.ratio;
    }
    assert!(
        last >= 0.9,
        "ratio should approach 1 as k grows, got {last:.2}"
    );
}

#[test]
fn dual_line_ratio_approaches_one() {
    let cfg = MacConfig::from_ticks(2, 64);
    let mut last = 0.0;
    for d in [4, 8, 16, 32] {
        let r = run_dual_line(d, cfg, &RunOptions::default());
        assert!(r.run.solved_and_valid(), "d={d}: {}", r.run);
        assert!(r.ratio >= 0.5, "d={d}: ratio {:.2}", r.ratio);
        last = r.ratio;
    }
    assert!(
        last >= 0.9,
        "ratio should approach 1 as D grows, got {last:.2}"
    );
}

#[test]
fn lower_bound_delay_scales_with_f_ack() {
    // The forced delay is Θ(F_ack): quadrupling F_ack roughly quadruples
    // the measured time on both constructions.
    for (fast, slow) in [(16u64, 64u64), (32, 128)] {
        let t_fast =
            run_dual_line(12, MacConfig::from_ticks(2, fast), &RunOptions::fast()).completion_ticks;
        let t_slow =
            run_dual_line(12, MacConfig::from_ticks(2, slow), &RunOptions::fast()).completion_ticks;
        let scale = t_slow as f64 / t_fast as f64;
        assert!(
            (2.5..=6.0).contains(&scale),
            "4x F_ack should scale time ~4x, got {scale:.2}"
        );

        let s_fast =
            run_choke_star(8, MacConfig::from_ticks(2, fast), &RunOptions::fast()).completion_ticks;
        let s_slow =
            run_choke_star(8, MacConfig::from_ticks(2, slow), &RunOptions::fast()).completion_ticks;
        let scale = s_slow as f64 / s_fast as f64;
        assert!(
            (2.5..=6.0).contains(&scale),
            "4x F_ack should scale star time ~4x, got {scale:.2}"
        );
    }
}

#[test]
fn adversarial_executions_are_model_valid() {
    // The whole point: the adversary achieves the delay *within* the MAC
    // layer guarantees. Validation must pass on every adversarial run.
    let cfg = MacConfig::from_ticks(4, 48);
    let star = run_choke_star(12, cfg, &RunOptions::default());
    assert!(star.run.validation.as_ref().unwrap().is_ok());
    let line = run_dual_line(10, cfg, &RunOptions::default());
    assert!(line.run.validation.as_ref().unwrap().is_ok());
}

#[test]
fn dual_line_beats_reliable_formula() {
    // On the dual-line network the adversary pushes BMMB far beyond the
    // G' = G formula D*F_prog + k*F_ack — the gap the paper highlights.
    let cfg = MacConfig::from_ticks(2, 64);
    let d = 16;
    let r = run_dual_line(d, cfg, &RunOptions::fast());
    let reliable_formula = (d as u64) * 2 + 2 * 64; // D*F_prog + k*F_ack, k=2
    assert!(
        r.completion_ticks > 3 * reliable_formula,
        "adversary should far exceed the reliable-case formula: {} vs {reliable_formula}",
        r.completion_ticks
    );
}
