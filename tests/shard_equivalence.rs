//! Differential shard-equivalence suite: the sharded runtime must be
//! **byte-identical** to the sequential one — same recorded `.amactrace`
//! bytes, same `OnlineValidator` violation set, same `OnlineStats` — for
//! every dual graph, fault plan, seed, and shard count `K` (including `K`
//! that doesn't divide `n`, `K > n`, and a shard whose nodes all crash
//! mid-run). This is the proof obligation behind the sharded simulator:
//! golden digests, trace replay, and `amac-check` fixtures all assume the
//! execution order is a function of the seed alone, never of `K`.
//!
//! The same obligation extends to the thread-per-shard drain: with `T`
//! scoped workers servicing the `K` shards' windows, every capture below
//! must still be byte-identical — the (K, T) grid is exercised alongside
//! the fused shard counts in every property and fixed case.

use amac::core::{Assignment, Bmmb, Delivered};
use amac::graph::{generators, DualGraph, GraphBuilder, NodeId};
use amac::mac::policies::RandomPolicy;
use amac::mac::{
    FaultPlan, MacConfig, OnlineStats, OnlineValidator, RunOutcome, Runtime, ValidationReport,
};
use amac::sim::{SimRng, Time};
use amac::store::StoreObserver;
use proptest::prelude::*;
use std::path::{Path, PathBuf};

/// Everything observable about one execution: the on-disk trace bytes,
/// the streaming validator's verdict, and its memory statistics.
struct Capture {
    trace_bytes: Vec<u8>,
    validation: ValidationReport,
    stats: OnlineStats,
    outcome: RunOutcome,
}

/// Runs BMMB over `dual` with `shards` event-queue shards (0 = the
/// sequential runtime) drained on `threads` scoped workers (0 = the fused
/// drain), recording to `path`, and captures every observable artifact.
#[allow(clippy::too_many_arguments)]
fn capture(
    dual: &DualGraph,
    cfg: MacConfig,
    assignment: &Assignment,
    faults: &FaultPlan,
    policy_seed: u64,
    shards: usize,
    threads: usize,
    path: &Path,
) -> Capture {
    let nodes = (0..dual.len()).map(|_| Bmmb::new()).collect();
    let mut rt = Runtime::new(dual.clone(), cfg, nodes, RandomPolicy::new(policy_seed));
    if shards > 0 {
        rt = rt.with_shards(shards);
        if threads > 0 {
            rt = rt.with_shard_threads(threads);
        }
    }
    let mut rt = rt.with_faults(faults.clone());
    let validator = rt.attach(OnlineValidator::new(dual.clone(), cfg));
    let store = StoreObserver::create(path, dual, cfg, policy_seed, Some(faults)).unwrap();
    let recorder = rt.attach(store);
    for (node, msg) in assignment.arrivals() {
        rt.inject(*node, *msg);
    }
    let outcome = rt.run();
    // Drain problem outputs so the runtime's buffers don't matter.
    let _: Vec<Delivered> = rt.drain_outputs().map(|r| r.out).collect();
    let validator = rt.detach(validator);
    let stats = validator.stats();
    let validation = validator.into_report(outcome == RunOutcome::Idle);
    rt.detach(recorder)
        .finish(outcome == RunOutcome::Idle)
        .unwrap();
    Capture {
        trace_bytes: std::fs::read(path).unwrap(),
        validation,
        stats,
        outcome,
    }
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("amac-shard-equivalence")
        .join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The `(shards, threads)` grid every equivalence case runs: the fused
/// drain over the historical shard counts (including `K` = 7, which never
/// divides the test sizes evenly), then the threaded drain over the
/// T ∈ {1, 2, 4} x K ∈ {1, 2, 4} grid plus an uneven threaded case.
const GRID: &[(usize, usize)] = &[
    (1, 0),
    (2, 0),
    (4, 0),
    (7, 0),
    (1, 1),
    (1, 2),
    (1, 4),
    (2, 1),
    (2, 2),
    (2, 4),
    (4, 1),
    (4, 2),
    (4, 4),
    (7, 3),
];

/// Asserts sequential vs sharded/threaded equivalence for every `(K, T)`
/// grid point, comparing trace bytes, violation sets, and validator
/// statistics.
fn assert_equivalent(
    label: &str,
    dual: &DualGraph,
    cfg: MacConfig,
    assignment: &Assignment,
    faults: &FaultPlan,
    policy_seed: u64,
) -> Result<(), TestCaseError> {
    let dir = scratch_dir(label);
    let seq_path = dir.join(format!("s{policy_seed}-seq.amactrace"));
    let seq = capture(dual, cfg, assignment, faults, policy_seed, 0, 0, &seq_path);
    for &(k, t) in GRID {
        let sh_path = dir.join(format!("s{policy_seed}-k{k}t{t}.amactrace"));
        let sh = capture(dual, cfg, assignment, faults, policy_seed, k, t, &sh_path);
        prop_assert_eq!(
            &seq.trace_bytes,
            &sh.trace_bytes,
            "trace bytes diverged: {} k={} t={} seed={}",
            label,
            k,
            t,
            policy_seed
        );
        prop_assert_eq!(&seq.validation, &sh.validation);
        prop_assert_eq!(&seq.stats, &sh.stats);
        prop_assert_eq!(seq.outcome, sh.outcome);
        std::fs::remove_file(&sh_path).ok();
    }
    std::fs::remove_file(&seq_path).ok();
    Ok(())
}

/// Strategy: a connected random dual graph (spanning path + random extra
/// reliable and unreliable edges).
fn arb_dual() -> impl Strategy<Value = DualGraph> {
    (3usize..20, 0u64..10_000).prop_map(|(n, seed)| {
        let mut rng = SimRng::seed(seed);
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(NodeId::new(i), NodeId::new(i + 1));
        }
        for _ in 0..n / 2 {
            let u = rng.below(n as u64) as usize;
            let v = rng.below(n as u64) as usize;
            if u != v {
                let _ = b.try_add_edge_idx(u, v);
            }
        }
        let g = b.build();
        generators::arbitrary_augment(g, (n / 2).max(1), &mut rng).unwrap()
    })
}

fn arb_config() -> impl Strategy<Value = MacConfig> {
    (1u64..5, 2u64..8).prop_map(|(fp, mult)| MacConfig::from_ticks(fp, fp * mult))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_runs_match_sequential_on_random_instances(
        dual in arb_dual(),
        cfg in arb_config(),
        msgs in 1usize..4,
        policy_seed in 0u64..1000,
    ) {
        let mut rng = SimRng::seed(policy_seed);
        let assignment = Assignment::random(dual.len(), msgs, &mut rng);
        assert_equivalent(
            "random",
            &dual,
            cfg,
            &assignment,
            &FaultPlan::new(),
            policy_seed,
        )?;
    }

    #[test]
    fn sharded_runs_match_sequential_under_random_fault_plans(
        dual in arb_dual(),
        crashes in 1usize..4,
        policy_seed in 0u64..1000,
    ) {
        let cfg = MacConfig::from_ticks(2, 16);
        let mut rng = SimRng::seed(policy_seed);
        let assignment = Assignment::random(dual.len(), 2, &mut rng);
        let faults = FaultPlan::random_crashes(
            dual.len(),
            crashes.min(dual.len() - 1),
            Time::from_ticks(40),
            &mut rng,
        );
        assert_equivalent("faulted", &dual, cfg, &assignment, &faults, policy_seed)?;
    }
}

/// `K` that doesn't divide `n`, and `K` larger than `n`, on a fixed line.
#[test]
fn indivisible_and_oversized_shard_counts_match() {
    // n = 10 with K ∈ {4, 7} leaves uneven blocks; n = 5 with K = 7 leaves
    // empty shards.
    for n in [10usize, 5] {
        let dual = DualGraph::reliable(generators::line(n).unwrap());
        let assignment = Assignment::all_at(NodeId::new(0), 2);
        assert_equivalent(
            "uneven",
            &dual,
            MacConfig::from_ticks(2, 16),
            &assignment,
            &FaultPlan::new(),
            42,
        )
        .unwrap();
    }
}

/// A whole shard's nodes crash mid-run: shard 1 of a 12-node line split
/// into 4 contiguous blocks owns nodes {3, 4, 5}; crash all three.
#[test]
fn whole_shard_crash_matches_sequential() {
    let dual = DualGraph::reliable(generators::line(12).unwrap());
    let part = amac::graph::partition::contiguous(&dual, 4);
    let victims: Vec<NodeId> = part.nodes(1).to_vec();
    assert_eq!(victims.len(), 3, "12 nodes / 4 shards = 3 per shard");
    let mut faults = FaultPlan::new();
    for (i, &v) in victims.iter().enumerate() {
        faults = faults.crash_at(v, Time::from_ticks(6 + i as u64));
    }
    let assignment = Assignment::all_at(NodeId::new(0), 3);
    assert_equivalent(
        "shard-crash",
        &dual,
        MacConfig::from_ticks(3, 24),
        &assignment,
        &faults,
        7,
    )
    .unwrap();
}
