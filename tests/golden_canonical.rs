//! Golden determinism over the registry's canonical seeds.
//!
//! Every registry experiment has one canonical fixed-seed recorded
//! execution (`repro <id> --record DIR`), and the `.amactrace` format
//! stores no wall-clock data — so the file bytes are a complete,
//! machine-independent transcript of the execution's event stream. This
//! test pins the FNV-1a digest of each canonical recording (at smoke
//! scale).
//!
//! The digests certify that the `ChoiceSource` refactor — which moved
//! every policy RNG draw behind [`amac_mac::ChoicePoint`]-labelled
//! choices — is byte-identical to the pre-refactor draw order on every
//! canonical seed, and they guard the same property against future
//! drift: any change to the number, order, or interpretation of random
//! draws shifts at least one digest. (The per-draw equivalence against a
//! verbatim pre-refactor policy implementation is proptested in
//! `crates/mac/tests/choice_equivalence.rs`; this test extends the
//! coverage to every shipped experiment's full pipeline.)
//!
//! Each digest is pinned once but checked twice: on the sequential
//! runtime and on the sharded event queue (`--shards 4`), so the pins
//! also certify that sharded execution replays the identical canonical
//! transcript (see `tests/shard_equivalence.rs` for the property-based
//! version of that claim).
//!
//! If a digest changes because the *model* legitimately changed (new
//! event kinds, different canonical parameterisation), regenerate the
//! table by printing `fnv1a64` of each recorded file — see
//! `docs/CHECKING.md` § fixture regeneration.
//!
//! [`amac_mac::ChoicePoint`]: amac::mac::ChoicePoint

use amac::sim::fnv1a64;

/// `(experiment id, FNV-1a digest of the smoke-scale canonical trace)`.
const GOLDEN: &[(&str, u64)] = &[
    ("fig1_gg", 0xc2dcb89e6d528b74),
    ("fig1_r_restricted", 0x28684fc1af4b5a96),
    ("fig1_arbitrary", 0x4d212171a5e5eeb7),
    ("lower_bounds", 0x9096add6ce357cc9),
    ("fig1_fmmb", 0x8a539e2d3dab2fb4),
    ("subroutines", 0x165c586afb3d47f8),
    ("ablation_abort", 0xf195d782ece7a20e),
    ("consensus_crash", 0x9e69da6b4b9630a2),
    ("election", 0x079b35b8c67326a2),
    ("scale", 0x9c713f2815af648f),
];

/// Records every registry experiment with `shards` event-queue shards
/// (drained on `threads` scoped workers when non-zero) and checks each
/// digest against the pinned table. The sharded and threaded runtimes
/// must reproduce the **same** digests — the canonical transcripts are a
/// function of the seed alone, never of the shard or thread count.
fn check_registry(tag: &str, shards: usize, threads: usize) {
    let dir = std::env::temp_dir().join(format!("amac-golden-canonical-{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    let mut drifted = Vec::new();
    let mut unpinned = Vec::new();
    for spec in amac::bench::experiments::registry() {
        let recorded = spec.record(&dir, true, shards, threads);
        let bytes = std::fs::read(&recorded.path).unwrap();
        let digest = fnv1a64(&bytes);
        match GOLDEN.iter().find(|(id, _)| *id == spec.id) {
            Some((_, want)) if digest == *want => {}
            Some((_, want)) => drifted.push(format!(
                "{}: expected 0x{want:016x}, recorded 0x{digest:016x} \
                 (shards={shards}, threads={threads})",
                spec.id
            )),
            None => unpinned.push(format!("{}: 0x{digest:016x}", spec.id)),
        }
        std::fs::remove_file(&recorded.path).ok();
    }
    assert!(
        drifted.is_empty(),
        "canonical executions drifted (draw order changed?):\n{}",
        drifted.join("\n")
    );
    assert!(
        unpinned.is_empty(),
        "new experiments need golden digests:\n{}",
        unpinned.join("\n")
    );
}

#[test]
fn canonical_recordings_are_byte_stable() {
    check_registry("seq", 0, 0);
    // Every pinned id must still exist in the registry.
    for (id, _) in GOLDEN {
        assert!(
            amac::bench::experiments::find(id).is_some(),
            "golden entry {id} no longer in the registry"
        );
    }
}

/// The sharded event queue (`--shards 4`) must hit the *same* pinned
/// digests: byte-identity of the canonical transcripts across engines is
/// part of the golden contract, not a separate weaker claim.
#[test]
fn canonical_recordings_are_byte_stable_under_four_shards() {
    check_registry("sh4", 4, 0);
}

/// The thread-per-shard drain must hit the same pinned digests across
/// the full worker grid: T ∈ {1, 2, 4} over K = 4 shards, plus the
/// degenerate K = 1 single-shard case. Threads change wall-clock
/// interleavings only — never a recorded byte.
#[test]
fn canonical_recordings_are_byte_stable_under_threaded_shards() {
    for threads in [1usize, 2, 4] {
        check_registry(&format!("sh4t{threads}"), 4, threads);
    }
    check_registry("sh1t2", 1, 2);
}
