//! Property tests for the durable trace store (`amac-store`): recording an
//! execution and replaying the file through a fresh `OnlineValidator` must
//! reproduce the live validator's verdict and stats exactly — over random
//! topologies, random schedulers, and random crash plans — and any damaged
//! file must be rejected, never misparsed.

use amac::core::{run_bmmb, Assignment, RunOptions};
use amac::graph::{generators, DualGraph, NodeId};
use amac::mac::policies::{LazyPolicy, RandomPolicy};
use amac::mac::{FaultPlan, MacConfig};
use amac::proto::consensus::{run_consensus, ConsensusParams};
use amac::sim::{SimRng, Time};
use amac::store::{replay_validate, StoreError, TraceReader};
use proptest::prelude::*;
use std::path::PathBuf;

/// A scratch file in the target-adjacent temp dir, unique per (test, case).
fn scratch(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join("amac-store-roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}-{case}.amactrace"))
}

/// Strategy: a connected dual graph with a seeded unreliable augmentation.
fn arb_dual() -> impl Strategy<Value = (DualGraph, u64)> {
    (3usize..16, 0u64..10_000).prop_map(|(n, seed)| {
        let mut rng = SimRng::seed(seed);
        let g = generators::line(n).unwrap();
        let dual = generators::arbitrary_augment(g, (n / 2).max(1), &mut rng).unwrap();
        (dual, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Record → replay equivalence on random BMMB executions: the replayed
    /// validator (rebuilt from nothing but the file) must report the same
    /// violation set and the same streaming stats as the live one.
    #[test]
    fn bmmb_replay_matches_live_validator(
        dual_seed in arb_dual(),
        k in 1usize..5,
        policy_seed in 0u64..1_000,
    ) {
        let (dual, seed) = dual_seed;
        let path = scratch("bmmb", seed ^ ((k as u64) << 32) ^ (policy_seed << 40));
        let mut rng = SimRng::seed(policy_seed);
        let assignment = Assignment::random(dual.len(), k, &mut rng);
        let report = run_bmmb(
            &dual,
            MacConfig::from_ticks(2, 16),
            &assignment,
            RandomPolicy::new(policy_seed),
            &RunOptions::default().recording(&path, policy_seed),
        );
        let live = report.validation.clone().expect("validation on");

        let replayed = replay_validate(TraceReader::open(&path).unwrap()).unwrap();
        prop_assert_eq!(replayed.header.seed, policy_seed);
        prop_assert_eq!(replayed.header.nodes as usize, dual.len());
        prop_assert_eq!(replayed.validation.violations(), live.violations());
        prop_assert_eq!(Some(replayed.stats), report.validator_stats);
        std::fs::remove_file(&path).ok();
    }

    /// The same equivalence under fault injection: consensus runs with a
    /// random crash plan, whose faults interleave with events in the
    /// stored stream.
    #[test]
    fn crashed_consensus_replay_matches_live_validator(
        n in 3usize..10,
        crash_fraction in 0.0f64..0.5,
        seed in 0u64..10_000,
    ) {
        let path = scratch("cons", seed ^ ((n as u64) << 32));
        let config = MacConfig::from_ticks(2, 12).enhanced();
        let crashes = (crash_fraction * n as f64).floor() as usize;
        let params = ConsensusParams::for_crashes(crashes, &config);
        let mut rng = SimRng::seed(seed);
        let initial: Vec<bool> = (0..n).map(|_| rng.chance(0.5)).collect();
        let window = Time::ZERO + params.phase_len.times(params.phases);
        let faults = FaultPlan::random_crashes(n, crashes, window, &mut rng);
        let dual = DualGraph::reliable(generators::complete(n).unwrap());
        let report = run_consensus(
            &dual,
            config,
            &initial,
            &params,
            faults,
            LazyPolicy::new().prefer_duplicates(),
            &RunOptions::default().recording(&path, seed),
        );
        let live = report.validation.clone().expect("validation on");

        let replayed = replay_validate(TraceReader::open(&path).unwrap()).unwrap();
        // Crashes scheduled after the run goes idle are never applied, so
        // the recorded fault count is bounded by the plan, not equal to it.
        prop_assert!(replayed.faults as usize <= crashes);
        prop_assert_eq!(replayed.validation.violations(), live.violations());
        prop_assert_eq!(Some(replayed.stats), report.validator_stats);
        std::fs::remove_file(&path).ok();
    }

    /// The determinism contract (docs/TRACE_FORMAT.md): the same seeded
    /// workload records byte-identical files on every run.
    #[test]
    fn same_seed_records_byte_identical_files(
        dual_seed in arb_dual(),
        policy_seed in 0u64..1_000,
    ) {
        let (dual, seed) = dual_seed;
        let assignment = Assignment::all_at(NodeId::new(0), 2);
        let record = |tag: &str| {
            let path = scratch(tag, seed ^ policy_seed << 20);
            run_bmmb(
                &dual,
                MacConfig::from_ticks(2, 16),
                &assignment,
                RandomPolicy::new(policy_seed),
                &RunOptions::default().recording(&path, policy_seed),
            );
            let bytes = std::fs::read(&path).unwrap();
            std::fs::remove_file(&path).ok();
            bytes
        };
        prop_assert_eq!(record("det-a"), record("det-b"));
    }
}

/// Damaged files are rejected with a `StoreError`, never misparsed into a
/// plausible-looking execution: every truncation of a real trace fails,
/// and so does every single-byte corruption of its record stream.
#[test]
fn truncated_and_corrupted_files_are_rejected() {
    let path = scratch("damage", 0);
    let dual = DualGraph::reliable(generators::line(5).unwrap());
    run_bmmb(
        &dual,
        MacConfig::from_ticks(2, 16),
        &Assignment::all_at(NodeId::new(0), 2),
        LazyPolicy::new().prefer_duplicates(),
        &RunOptions::default().recording(&path, 0),
    );
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let parse = |bytes: &[u8]| -> Result<(), StoreError> {
        let mut r = TraceReader::new(bytes)?;
        while r.next_record()?.is_some() {}
        Ok(())
    };
    assert!(parse(&bytes).is_ok(), "the pristine file must parse");
    for len in 0..bytes.len() {
        assert!(
            parse(&bytes[..len]).is_err(),
            "a {len}-byte truncation must be rejected"
        );
    }
    // Header bytes carry run metadata (seed, digests of *other* sections)
    // and are cross-checked rather than self-checksummed; the integrity
    // guarantee covers the topology section and the record stream.
    for at in amac::store::format::HEADER_LEN..bytes.len() {
        let mut bad = bytes.clone();
        bad[at] ^= 0x01;
        assert!(
            parse(&bad).is_err(),
            "flipping a bit at offset {at} must be rejected"
        );
    }
}

/// The operator-facing contract behind `repro <exp> --record` followed by
/// `repro replay`: the recorded run's summary block and the replayed one
/// render byte-identically.
#[test]
fn recorded_and_replayed_summaries_render_identically() {
    let dir = std::env::temp_dir().join("amac-store-roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let opts = amac::bench::CanonicalOpts::recording(&dir, true, 0, 0);
    let recorded = amac::bench::record::consensus_crash(&opts)
        .trace
        .expect("recording was requested");
    let replayed = replay_validate(TraceReader::open(&recorded.path).unwrap()).unwrap();
    assert_eq!(recorded.summary.to_string(), replayed.to_string());
    std::fs::remove_file(&recorded.path).ok();
}
