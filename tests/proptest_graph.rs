//! Property-based tests for the graph substrate (proptest).

use amac::graph::{algo, generators, DualGraph, Graph, GraphBuilder, NodeId};
use amac::sim::SimRng;
use proptest::prelude::*;

/// Strategy: a random connected-ish graph as (n, edge list).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(3 * n)).prop_map(move |pairs| {
            let mut b = GraphBuilder::new(n);
            // Spanning path keeps most instances connected and interesting.
            for i in 0..n - 1 {
                b.add_edge(NodeId::new(i), NodeId::new(i + 1));
            }
            for (u, v) in pairs {
                if u != v {
                    let _ = b.try_add_edge_idx(u, v);
                }
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bfs_distances_satisfy_triangle_inequality_over_edges(g in arb_graph()) {
        // For every edge (u, v): |dist(s, u) - dist(s, v)| <= 1.
        let s = NodeId::new(0);
        let dist = algo::bfs_distances(&g, s);
        for (u, v) in g.edges() {
            let du = dist[u.index()];
            let dv = dist[v.index()];
            if du != algo::UNREACHABLE && dv != algo::UNREACHABLE {
                prop_assert!(du.abs_diff(dv) <= 1, "edge ({u},{v}): {du} vs {dv}");
            } else {
                prop_assert_eq!(du, dv, "edge endpoints share reachability");
            }
        }
    }

    #[test]
    fn power_graphs_are_monotone_in_r(g in arb_graph()) {
        let p1 = algo::power(&g, 1);
        let p2 = algo::power(&g, 2);
        let p3 = algo::power(&g, 3);
        prop_assert!(p1.is_subgraph_of(&p2));
        prop_assert!(p2.is_subgraph_of(&p3));
        prop_assert_eq!(p1, g.clone());
    }

    #[test]
    fn power_edges_match_bfs_distance(g in arb_graph(), r in 1usize..4) {
        let pr = algo::power(&g, r);
        for u in g.nodes() {
            let dist = algo::bfs_distances(&g, u);
            for v in g.nodes() {
                if u < v {
                    let within = dist[v.index()] != algo::UNREACHABLE && dist[v.index()] <= r;
                    prop_assert_eq!(pr.has_edge(u, v), within);
                }
            }
        }
    }

    #[test]
    fn components_partition_the_nodes(g in arb_graph()) {
        let comps = algo::components(&g);
        let total: usize = comps.iter().map(amac::graph::NodeSet::len).sum();
        prop_assert_eq!(total, g.len());
        for (i, a) in comps.iter().enumerate() {
            for b in comps.iter().skip(i + 1) {
                prop_assert!(a.is_disjoint(b));
            }
        }
    }

    #[test]
    fn r_restricted_augment_invariants(seed in 0u64..1000, r in 1usize..5, p in 0.0f64..1.0) {
        let g = generators::line(20).unwrap();
        let mut rng = SimRng::seed(seed);
        let dual = generators::r_restricted_augment(g, r, p, &mut rng).unwrap();
        // E ⊆ E' by construction (validated by DualGraph::new).
        prop_assert!(dual.g().is_subgraph_of(dual.g_prime()));
        prop_assert!(dual.check_r_restricted(r).is_ok());
        if let Some(radius) = dual.restriction_radius() {
            prop_assert!(radius <= r.max(1));
        }
    }

    #[test]
    fn grey_zone_samples_always_verify(seed in 0u64..500, n in 5usize..40, c in 1.0f64..3.0) {
        let mut rng = SimRng::seed(seed);
        let cfg = generators::GreyZoneConfig::new(n, 4.0)
            .with_c(c)
            .with_grey_edge_probability(0.5);
        let net = generators::grey_zone_network(&cfg, &mut rng).unwrap();
        prop_assert!(net.dual.check_grey_zone(&net.embedding, c).is_ok());
        prop_assert!(net.dual.g().is_subgraph_of(net.dual.g_prime()));
    }

    #[test]
    fn dual_graph_neighborhoods_are_consistent(g in arb_graph(), extra in 0usize..10) {
        let dual = generators::arbitrary_augment(g, extra, &mut SimRng::seed(4)).unwrap();
        for v in dual.g().nodes() {
            let reliable = dual.reliable_neighbors(v);
            let unreliable = dual.unreliable_neighbors(v);
            let all = dual.all_neighbors(v);
            prop_assert_eq!(reliable.len() + unreliable.len(), all.len());
            for u in reliable {
                prop_assert!(all.contains(u));
                prop_assert!(!unreliable.contains(u));
            }
        }
    }

    #[test]
    fn diameter_bounds_eccentricities(g in arb_graph()) {
        let d = algo::diameter(&g);
        for i in 0..g.len() {
            prop_assert!(algo::eccentricity(&g, NodeId::new(i)) <= d);
        }
    }

    #[test]
    fn maximal_independent_greedy_validates(g in arb_graph()) {
        // Greedy MIS is maximal-independent; our checker must agree.
        let mut set = amac::graph::NodeSet::new(g.len());
        for i in 0..g.len() {
            let v = NodeId::new(i);
            if g.neighbors(v).iter().all(|u| !set.contains(*u)) {
                set.insert(v);
            }
        }
        prop_assert!(algo::is_maximal_independent(&g, &set));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dual_line_structure_holds_for_all_d(d in 2usize..40) {
        let net = generators::dual_line(d).unwrap();
        prop_assert_eq!(net.dual.len(), 2 * d);
        prop_assert_eq!(net.dual.g().edge_count(), 2 * (d - 1));
        prop_assert_eq!(net.dual.unreliable_edge_count(), 2 * (d - 1));
        prop_assert!(net.dual.check_grey_zone(&net.embedding, generators::DUAL_LINE_C).is_ok());
        // The two lines are G-disconnected but G'-connected.
        prop_assert_eq!(algo::components(net.dual.g()).len(), 2);
        prop_assert!(algo::is_connected(net.dual.g_prime()));
    }

    #[test]
    fn choke_star_hub_is_a_cut_vertex(k in 1usize..30) {
        let (g, hub, receiver) = generators::choke_star(k).unwrap();
        let dual = DualGraph::reliable(g);
        // Every leaf reaches the receiver only through the hub.
        let dist = algo::bfs_distances(dual.g(), receiver);
        for (i, &d) in dist.iter().enumerate().take(k.saturating_sub(1)) {
            prop_assert_eq!(d, 2, "leaf {} is two hops from the receiver", i);
        }
        prop_assert_eq!(dist[hub.index()], 1);
    }
}
