//! Offline, API-compatible subset of the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 line), vendored so the workspace builds without registry
//! access.
//!
//! Only the surface the workspace actually uses is provided: [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension trait (`gen`, `gen_bool`,
//! `gen_range`), [`rngs::StdRng`], and [`seq::SliceRandom`]. Algorithms are
//! deterministic and statistically reasonable (SplitMix64-based) but do
//! **not** reproduce upstream `rand`'s exact output streams.

#![warn(missing_docs)]

use core::fmt;
use core::ops::Range;

/// Error type reported by fallible RNG operations.
///
/// The vendored generators are infallible, so this is never constructed by
/// this crate; it exists so `try_fill_bytes` signatures match upstream.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("random number generator failure")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw integer output and byte
/// filling.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fills `dest` with random bytes, reporting failure as an [`Error`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type, a fixed-size byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it into a full seed with
    /// SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut expander = splitmix::SplitMix64::new(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = expander.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from an RNG's raw output (the
/// `Standard` distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits mapped to [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Extension methods on [`RngCore`] (a subset of upstream `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli trial: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0, 1]");
        if p >= 1.0 {
            return true;
        }
        f64::sample(self) < p
    }

    /// Uniform sample from a half-open integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range: empty range");
        range.start + uniform_below(self, range.end - range.start)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniform sample in `[0, bound)` by widening multiply with a rejection loop
/// (Lemire's method), exact and unbiased.
pub(crate) fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

pub(crate) mod splitmix {
    //! The SplitMix64 generator underlying [`rngs::StdRng`](crate::rngs::StdRng)
    //! and seed expansion.

    pub(crate) struct SplitMix64 {
        state: u64,
    }

    impl SplitMix64 {
        pub(crate) fn new(state: u64) -> Self {
            SplitMix64 { state }
        }

        pub(crate) fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix::SplitMix64, Error, RngCore, SeedableRng};

    /// The standard deterministic generator.
    ///
    /// Upstream `StdRng` is ChaCha-based; this vendored stand-in is
    /// SplitMix64-based, so output streams differ from upstream for the same
    /// seed, but determinism per seed — the only property the workspace
    /// relies on — holds.
    pub struct StdRng {
        inner: SplitMix64,
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.inner.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.inner.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            // Fold the 256-bit seed into the 64-bit SplitMix64 state.
            let mut state = 0u64;
            for chunk in seed.chunks(8) {
                let mut bytes = [0u8; 8];
                bytes[..chunk.len()].copy_from_slice(chunk);
                state = state.rotate_left(23) ^ u64::from_le_bytes(bytes);
            }
            StdRng {
                inner: SplitMix64::new(state),
            }
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{uniform_below, Rng};

    /// Randomized operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.gen::<u64>());
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "~30% of 10k, got {hits}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(5..15);
            assert!((5..15).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn choose_covers_elements() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
