//! Offline, API-compatible subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness,
//! vendored so the workspace builds without registry access.
//!
//! Supports the `criterion_group!` / `criterion_main!` macros,
//! [`Criterion::bench_function`], and [`Bencher::iter`] /
//! [`Bencher::iter_batched`]. Instead of upstream's statistical analysis it
//! reports the median, minimum, and mean wall-clock time per iteration over
//! a fixed number of timed batches — enough to compare runs by eye and to
//! keep every bench target compiling and runnable.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The vendored harness times each
/// routine invocation individually, so the variants only exist for API
/// compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Routine input is small; upstream would batch many per allocation.
    SmallInput,
    /// Routine input is large; upstream would batch few per allocation.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    warmup_iters: u64,
    timed_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Modest fixed counts: the workspace's benches simulate whole
        // executions per iteration, so dozens of samples are already
        // seconds of wall clock.
        Criterion {
            warmup_iters: 3,
            timed_iters: 30,
        }
    }
}

impl Criterion {
    /// Runs `routine` with a [`Bencher`] and prints a one-line summary.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warmup_iters: self.warmup_iters,
            timed_iters: self.timed_iters,
            samples: Vec::new(),
        };
        routine(&mut bencher);
        bencher.report(id);
        self
    }
}

/// Times a closure on behalf of [`Criterion::bench_function`].
pub struct Bencher {
    warmup_iters: u64,
    timed_iters: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, called repeatedly with no per-call setup.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..self.warmup_iters {
            black_box(routine());
        }
        for _ in 0..self.timed_iters {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh input from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.warmup_iters {
            black_box(routine(setup()));
        }
        for _ in 0..self.timed_iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        println!(
            "{id:<40} median {:>12?}  min {:>12?}  mean {:>12?}  ({} iters)",
            median,
            min,
            mean,
            self.samples.len()
        );
    }
}

/// Declares a benchmark group: a function running each target against a
/// default [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        Criterion::default().bench_function("counter", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        // 3 warmup + 30 timed.
        assert_eq!(calls, 33);
    }

    #[test]
    fn iter_batched_gets_fresh_input() {
        let mut setups = 0u64;
        Criterion::default().bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 33);
    }
}
