//! Offline, API-compatible subset of the
//! [`proptest`](https://crates.io/crates/proptest) crate, vendored so the
//! workspace builds without registry access.
//!
//! Provides the [`Strategy`] trait with `prop_map` / `prop_flat_map`, range
//! and tuple strategies, [`collection::vec`], [`test_runner::ProptestConfig`],
//! and the [`proptest!`] / [`prop_assert!`] family of macros. Unlike
//! upstream, generation is derived deterministically from the test's module
//! path and name (no persistence files), and failing cases are reported
//! without shrinking.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `size` and elements drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The usual imports: `use proptest::prelude::*;`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests.
///
/// Each `#[test] fn name(arg in strategy, ...) { body }` item expands to a
/// regular `#[test]` running the body over `ProptestConfig::cases` generated
/// inputs. `prop_assert!`-family failures abort the case with a panic that
/// reports the failing input values.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @config ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config ($config:expr)
     $(
         $(#[$meta:meta])+
         fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                    )+
                    let outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(reason),
                        ) => {
                            let _ = reason;
                        }
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(reason),
                        ) => {
                            panic!(
                                "proptest {} failed at case {}/{}: {}",
                                stringify!($name),
                                case + 1,
                                config.cases,
                                reason
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Like `assert!`, but inside [`proptest!`] bodies: failure aborts only the
/// current generated case, reporting its inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Like `assert_eq!`, for [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Like `assert_ne!`, for [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Skips the current generated case when its inputs don't satisfy a
/// precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}
