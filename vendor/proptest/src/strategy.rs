//! The [`Strategy`] trait and the built-in strategies.

use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};

/// A recipe for generating values of type [`Strategy::Value`].
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply draws a value from the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Chains generation: `f` builds a second strategy from each generated
    /// value, and that strategy produces the final value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Filters generated values, retrying until `f` accepts one.
    ///
    /// Gives up (panics) after 1000 consecutive rejections, mirroring
    /// upstream's global rejection cap.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let value = self.inner.generate(rng);
            if (self.f)(&value) {
                return value;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 values in a row",
            self.whence
        );
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(
                        self.start < self.end,
                        "empty range strategy {}..{}",
                        self.start,
                        self.end
                    );
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $ty
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(
                        self.start() <= self.end(),
                        "empty range strategy {}..={}",
                        self.start(),
                        self.end()
                    );
                    let span = (*self.end() as u64) - (*self.start() as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    self.start() + rng.below(span + 1) as $ty
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($ty:ty => $uty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(
                        self.start < self.end,
                        "empty range strategy {}..{}",
                        self.start,
                        self.end
                    );
                    let span = (self.end as $uty).wrapping_sub(self.start as $uty);
                    self.start.wrapping_add(rng.below(span as u64) as $ty)
                }
            }
        )*
    };
}

signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(
            self.start < self.end,
            "empty range strategy {}..{}",
            self.start,
            self.end
        );
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(
            self.start < self.end,
            "empty range strategy {}..{}",
            self.start,
            self.end
        );
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),*) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_name("ranges_respect_bounds");
        for _ in 0..500 {
            let x = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let y = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&y));
            let z = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::from_name("map_and_flat_map_compose");
        let strategy = (1usize..10)
            .prop_flat_map(|n| crate::collection::vec(0usize..n, n..n + 1))
            .prop_map(|v| (v.len(), v));
        for _ in 0..200 {
            let (len, v) = strategy.generate(&mut rng);
            assert_eq!(len, v.len());
            assert!(v.iter().all(|&x| x < len));
        }
    }

    #[test]
    fn just_yields_constant() {
        let mut rng = TestRng::from_name("just_yields_constant");
        assert_eq!(Just(7u8).generate(&mut rng), 7);
    }

    #[test]
    fn filter_retries() {
        let mut rng = TestRng::from_name("filter_retries");
        let even = (0usize..100).prop_filter("even", |x| x % 2 == 0);
        for _ in 0..100 {
            assert_eq!(even.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let sample = |name: &'static str| {
            let mut rng = TestRng::from_name(name);
            (0..10)
                .map(|_| (0u64..1000).generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(sample("alpha"), sample("alpha"));
        assert_ne!(sample("alpha"), sample("beta"));
    }
}
