//! Test configuration, the case RNG, and error plumbing.

use core::fmt;

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case's inputs were rejected by a precondition
    /// ([`prop_assume!`](crate::prop_assume)); the case is skipped.
    Reject(String),
    /// An assertion failed; the test fails.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with the given message.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(reason) => write!(f, "input rejected: {reason}"),
            TestCaseError::Fail(reason) => f.write_str(reason),
        }
    }
}

/// The deterministic RNG driving value generation (SplitMix64).
///
/// Seeded from the test's fully-qualified name, so every test gets an
/// independent but reproducible stream — there are no persistence files and
/// no ambient entropy.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, bound)` (Lemire's method, exact).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform sample in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_cases() {
        assert_eq!(ProptestConfig::with_cases(64).cases, 64);
        assert_eq!(ProptestConfig::default().cases, 256);
    }

    #[test]
    fn rng_streams_are_stable_and_distinct() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_in_range() {
        let mut rng = TestRng::from_name("below");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = TestRng::from_name("unit");
        for _ in 0..1000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn errors_display() {
        assert_eq!(TestCaseError::fail("boom").to_string(), "boom");
        assert_eq!(
            TestCaseError::reject("odd").to_string(),
            "input rejected: odd"
        );
    }
}
